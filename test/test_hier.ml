(* Hierarchical SSTA: partition invariants, content-hash locality of
   one-gate edits, macro compose vs the flat single-pass engine, jobs
   determinism, and the dependency-aware cache's reuse counters. *)

module Partition = Hier.Partition
module Engine = Hier.Engine
module Edit = Hier.Edit

let with_tmp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hier-test.%d.%d" (Unix.getpid ()) (Random.int 1_000_000))
  in
  Fun.protect
    ~finally:(fun () ->
      (try Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir)
       with Sys_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

(* shared fixtures: mirror test_ssta's, with a couple of DFFs so the
   endpoint set mixes primary outputs and register data pins *)
let netlist =
  lazy
    (Circuit.Generator.generate
       { Circuit.Generator.name = "hier"; n_gates = 140; n_inputs = 10;
         n_outputs = 6; dff_fraction = 0.08; seed = 17 })

let setup = lazy (Ssta.Experiment.setup_circuit (Lazy.force netlist))

let fast_config =
  {
    Ssta.Algorithm2.max_area_fraction = 0.004;
    min_angle_deg = 28.0;
    computed_pairs = 80;
    r = Some 25;
    mode = Kle.Galerkin.Auto;
  }

let models_fixture =
  lazy
    (let s = Lazy.force setup in
     let a2 =
       Ssta.Algorithm2.prepare ~config:fast_config
         (Ssta.Process.paper_default ())
         s.Ssta.Experiment.locations
     in
     Ssta.Algorithm2.models a2)

let model_key = "hier-test-models"

(* ---------- partition ---------- *)

let test_partition_invariants () =
  let nl = Lazy.force netlist in
  let part = Partition.build ~n_blocks:4 nl in
  let n = Circuit.Netlist.size nl in
  (* every gate in exactly one block, consistent with block_of_gate *)
  let seen = Array.make n 0 in
  Array.iter
    (fun b ->
      Array.iter
        (fun g ->
          seen.(g) <- seen.(g) + 1;
          Alcotest.(check int)
            (Printf.sprintf "gate %d block map" g)
            b.Partition.index
            part.Partition.block_of_gate.(g))
        b.Partition.gates)
    part.Partition.blocks;
  Array.iteri
    (fun g c -> Alcotest.(check int) (Printf.sprintf "gate %d covered once" g) 1 c)
    seen;
  (* cross-block combinational edges point forward; ext_inputs come from
     strictly earlier blocks *)
  Array.iter
    (fun g ->
      match g.Circuit.Netlist.kind with
      | Circuit.Gate.Input | Circuit.Gate.Dff -> ()
      | _ ->
          let bg = part.Partition.block_of_gate.(g.Circuit.Netlist.id) in
          Array.iter
            (fun f ->
              Alcotest.(check bool)
                (Printf.sprintf "edge %d->%d forward" f g.Circuit.Netlist.id)
                true
                (part.Partition.block_of_gate.(f) <= bg))
            g.Circuit.Netlist.fanins)
    nl.Circuit.Netlist.gates;
  Array.iter
    (fun b ->
      Array.iter
        (fun e ->
          Alcotest.(check bool)
            (Printf.sprintf "ext input %d earlier than block %d" e b.Partition.index)
            true
            (part.Partition.block_of_gate.(e) < b.Partition.index))
        b.Partition.ext_inputs)
    part.Partition.blocks

(* a kind swap within a (nand2, nor2) or (and2, or2) pair keeps the pin
   capacitance, so upstream loads (and hashes) stay put *)
let find_swappable nl =
  let found = ref None in
  Array.iter
    (fun g ->
      if !found = None then
        match g.Circuit.Netlist.kind with
        | Circuit.Gate.Nand2 -> found := Some (g.Circuit.Netlist.id, Circuit.Gate.Nor2)
        | Circuit.Gate.Nor2 -> found := Some (g.Circuit.Netlist.id, Circuit.Gate.Nand2)
        | Circuit.Gate.And2 -> found := Some (g.Circuit.Netlist.id, Circuit.Gate.Or2)
        | Circuit.Gate.Or2 -> found := Some (g.Circuit.Netlist.id, Circuit.Gate.And2)
        | _ -> ())
    nl.Circuit.Netlist.gates;
  match !found with
  | Some e -> e
  | None -> Alcotest.fail "fixture netlist has no swappable 2-input gate"

let test_edit_dirties_one_block () =
  let nl = Lazy.force netlist in
  let s = Lazy.force setup in
  let gate, kind = find_swappable nl in
  let nl' =
    match Edit.apply nl { Edit.gate; kind } with
    | Ok nl' -> nl'
    | Error m -> Alcotest.fail m
  in
  let s' = Ssta.Experiment.setup_circuit nl' in
  let part = Partition.build ~n_blocks:4 nl in
  let part' = Partition.build ~n_blocks:4 nl' in
  Alcotest.(check int) "same block count"
    (Array.length part.Partition.blocks)
    (Array.length part'.Partition.blocks);
  let dirty = ref [] in
  Array.iteri
    (fun i _ ->
      let h = Partition.content_hash part ~setup:s i in
      let h' = Partition.content_hash part' ~setup:s' i in
      if h <> h' then dirty := i :: !dirty)
    part.Partition.blocks;
  Alcotest.(check (list int))
    "exactly the edited gate's block is dirty"
    [ part.Partition.block_of_gate.(gate) ]
    (List.rev !dirty)

let test_edit_rejects_bad_targets () =
  let nl = Lazy.force netlist in
  Alcotest.(check bool) "out of range" true
    (Result.is_error (Edit.apply nl { Edit.gate = -1; kind = Circuit.Gate.Inv }));
  Alcotest.(check bool) "source not editable" true
    (Result.is_error
       (Edit.apply nl
          { Edit.gate = (Circuit.Netlist.inputs nl).(0); kind = Circuit.Gate.Inv }));
  Alcotest.(check bool) "kind parse rejects dff" true
    (Result.is_error (Edit.kind_of_string "dff"));
  (match Edit.kind_of_string "nor2" with
  | Ok Circuit.Gate.Nor2 -> ()
  | _ -> Alcotest.fail "nor2 should parse");
  let gate, kind = find_swappable nl in
  ignore gate;
  Alcotest.(check string) "kind roundtrip"
    (Edit.kind_to_string kind)
    (Edit.kind_to_string
       (Result.get_ok (Edit.kind_of_string (Edit.kind_to_string kind))))

(* ---------- compose vs flat ---------- *)

let test_retime_matches_flat () =
  let s = Lazy.force setup in
  let models = Lazy.force models_fixture in
  let flat = Ssta.Block_ssta.run s ~models in
  let res = Engine.retime ~n_blocks:3 s ~models ~model_key in
  Alcotest.(check int) "basis dim" flat.Ssta.Block_ssta.basis_dim res.Engine.basis_dim;
  Alcotest.(check int) "endpoint count"
    (Array.length flat.Ssta.Block_ssta.endpoint_forms)
    (Array.length res.Engine.endpoint_forms);
  let e_mu, e_sigma = Engine.validate_against_flat res ~flat in
  Alcotest.(check bool)
    (Printf.sprintf "worst mean within 0.5%% (got %.4f%%)" e_mu)
    true (e_mu < 0.5);
  Alcotest.(check bool)
    (Printf.sprintf "worst sigma within 8%% (got %.4f%%)" e_sigma)
    true (e_sigma < 8.0);
  (* no cache: everything extracted *)
  Alcotest.(check int) "reused" 0 res.Engine.counters.Engine.blocks_reused;
  Alcotest.(check int) "recomputed" res.Engine.n_blocks
    res.Engine.counters.Engine.blocks_recomputed

let check_form_identical msg (a : Ssta.Canonical.t) (b : Ssta.Canonical.t) =
  Alcotest.(check int64) (msg ^ " mean bits")
    (Int64.bits_of_float a.Ssta.Canonical.mean)
    (Int64.bits_of_float b.Ssta.Canonical.mean);
  Alcotest.(check int64) (msg ^ " indep bits")
    (Int64.bits_of_float a.Ssta.Canonical.indep)
    (Int64.bits_of_float b.Ssta.Canonical.indep);
  Alcotest.(check int) (msg ^ " dim") (Ssta.Canonical.dim a) (Ssta.Canonical.dim b);
  Array.iteri
    (fun i v ->
      Alcotest.(check int64)
        (Printf.sprintf "%s sens %d bits" msg i)
        (Int64.bits_of_float v)
        (Int64.bits_of_float b.Ssta.Canonical.sens.(i)))
    a.Ssta.Canonical.sens

let test_retime_jobs_bit_identical () =
  let s = Lazy.force setup in
  let models = Lazy.force models_fixture in
  let r1 = Engine.retime ~n_blocks:4 ~jobs:1 s ~models ~model_key in
  let r2 = Engine.retime ~n_blocks:4 ~jobs:2 s ~models ~model_key in
  check_form_identical "worst" r1.Engine.worst r2.Engine.worst;
  Array.iteri
    (fun i f ->
      check_form_identical (Printf.sprintf "endpoint %d" i) f
        r2.Engine.endpoint_forms.(i))
    r1.Engine.endpoint_forms

(* ---------- dependency-aware cache ---------- *)

let test_retime_cache_counters () =
  with_tmp_dir (fun dir ->
      let s = Lazy.force setup in
      let nl = Lazy.force netlist in
      let models = Lazy.force models_fixture in
      let store = Persist.Store.open_ ~dir () in
      let dg = Persist.Depgraph.create store in
      (* cold: every macro extracted *)
      let cold = Engine.retime ~n_blocks:4 ~cache:dg s ~models ~model_key in
      let nb = cold.Engine.n_blocks in
      Alcotest.(check int) "cold reused" 0 cold.Engine.counters.Engine.blocks_reused;
      Alcotest.(check int) "cold recomputed" nb
        cold.Engine.counters.Engine.blocks_recomputed;
      (* warm: the stitched result itself is served *)
      let warm = Engine.retime ~n_blocks:4 ~cache:dg s ~models ~model_key in
      Alcotest.(check int) "warm reused" nb warm.Engine.counters.Engine.blocks_reused;
      Alcotest.(check int) "warm recomputed" 0
        warm.Engine.counters.Engine.blocks_recomputed;
      check_form_identical "warm == cold" cold.Engine.worst warm.Engine.worst;
      (* one-gate edit: exactly the dirty block re-extracts *)
      let gate, kind = find_swappable nl in
      let nl' = Result.get_ok (Edit.apply nl { Edit.gate; kind }) in
      let s' = Ssta.Experiment.setup_circuit nl' in
      let edited = Engine.retime ~n_blocks:4 ~cache:dg s' ~models ~model_key in
      Alcotest.(check int) "edit recomputed" 1
        edited.Engine.counters.Engine.blocks_recomputed;
      Alcotest.(check int) "edit reused" (nb - 1)
        edited.Engine.counters.Engine.blocks_reused;
      (* the edited analysis agrees with a flat pass over the edited design *)
      let flat' = Ssta.Block_ssta.run s' ~models in
      let e_mu, e_sigma = Engine.validate_against_flat edited ~flat:flat' in
      Alcotest.(check bool)
        (Printf.sprintf "edited mean within 0.5%% (got %.4f%%)" e_mu)
        true (e_mu < 0.5);
      Alcotest.(check bool)
        (Printf.sprintf "edited sigma within 8%% (got %.4f%%)" e_sigma)
        true (e_sigma < 8.0))

let test_retime_invalidate_targets_one_block () =
  with_tmp_dir (fun dir ->
      let s = Lazy.force setup in
      let nl = Lazy.force netlist in
      let models = Lazy.force models_fixture in
      let store = Persist.Store.open_ ~dir () in
      let dg = Persist.Depgraph.create store in
      let cold = Engine.retime ~n_blocks:4 ~cache:dg s ~models ~model_key in
      let nb = cold.Engine.n_blocks in
      (* invalidate one macro by address: the stitched result goes with it *)
      let part = Partition.build ~n_blocks:4 nl in
      let part_hash = Partition.content_hash part ~setup:s 1 in
      let removed =
        Persist.Depgraph.invalidate dg (Engine.macro_node ~part_hash ~model_key)
      in
      Alcotest.(check bool) "macro + stitched removed" true (List.length removed >= 2);
      let again = Engine.retime ~n_blocks:4 ~cache:dg s ~models ~model_key in
      Alcotest.(check int) "only the invalidated block re-extracts" 1
        again.Engine.counters.Engine.blocks_recomputed;
      Alcotest.(check int) "others reused" (nb - 1)
        again.Engine.counters.Engine.blocks_reused;
      check_form_identical "identical after rebuild" cold.Engine.worst
        again.Engine.worst)

let () =
  Alcotest.run "hier"
    [
      ( "partition",
        [
          Alcotest.test_case "invariants" `Quick test_partition_invariants;
          Alcotest.test_case "one-gate edit dirties one block" `Quick
            test_edit_dirties_one_block;
          Alcotest.test_case "edit validation" `Quick test_edit_rejects_bad_targets;
        ] );
      ( "engine",
        [
          Alcotest.test_case "compose matches flat" `Quick test_retime_matches_flat;
          Alcotest.test_case "jobs bit-identical" `Quick test_retime_jobs_bit_identical;
        ] );
      ( "cache",
        [
          Alcotest.test_case "cold/warm/edit counters" `Quick test_retime_cache_counters;
          Alcotest.test_case "invalidate targets one block" `Quick
            test_retime_invalidate_targets_one_block;
        ] );
    ]
