module K = Kernels.Kernel
module P = Geometry.Point

let check_close ?(tol = 1e-10) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let origin = P.make 0.0 0.0

(* ---------- Kernel evaluation ---------- *)

let all_normalized_kernels =
  [
    K.Gaussian { c = 2.8 };
    K.Exponential { c = 1.5 };
    K.Separable_exp_l1 { c = 1.2 };
    K.Radial_exponential { c = 1.0 };
    K.Matern { b = 2.0; s = 2.5 };
    K.Linear_cone { rho = 1.0 };
    K.Spherical { rho = 1.3 };
    K.Anisotropic_gaussian { cx = 3.0; cy = 1.0 };
  ]

let test_unit_at_zero_distance () =
  List.iter
    (fun k ->
      check_close ~tol:1e-7 (K.name k) 1.0 (K.eval k (P.make 0.3 (-0.2)) (P.make 0.3 (-0.2))))
    all_normalized_kernels

let test_symmetry () =
  let x = P.make 0.4 0.7 and y = P.make (-0.6) 0.1 in
  List.iter
    (fun k -> check_close ~tol:1e-12 (K.name k) (K.eval k x y) (K.eval k y x))
    all_normalized_kernels

let test_gaussian_profile () =
  let k = K.Gaussian { c = 2.0 } in
  check_close ~tol:1e-14 "profile" (exp (-2.0)) (K.eval_distance k 1.0);
  check_close ~tol:1e-14 "eval matches profile" (exp (-2.0 *. 0.25))
    (K.eval k origin (P.make 0.5 0.0))

let test_exponential_profile () =
  let k = K.Exponential { c = 3.0 } in
  check_close ~tol:1e-14 "profile" (exp (-1.5)) (K.eval_distance k 0.5)

let test_linear_cone_clamps () =
  let k = K.Linear_cone { rho = 1.0 } in
  check_close "inside" 0.5 (K.eval_distance k 0.5);
  check_close "beyond rho" 0.0 (K.eval_distance k 1.5)

let test_spherical_support () =
  let k = K.Spherical { rho = 1.0 } in
  check_close "at rho" 0.0 (K.eval_distance k 1.0);
  check_close "beyond" 0.0 (K.eval_distance k 2.0);
  check_close ~tol:1e-12 "half" (1.0 -. 0.75 +. 0.0625) (K.eval_distance k 0.5)

let test_separable_l1_factorizes () =
  let c = 1.7 in
  let k = K.Separable_exp_l1 { c } in
  let x = P.make 0.3 0.4 and y = P.make (-0.2) 0.9 in
  let expected = exp (-.c *. Float.abs (0.3 +. 0.2)) *. exp (-.c *. Float.abs (0.4 -. 0.9)) in
  check_close ~tol:1e-14 "product form" expected (K.eval k x y)

let test_radial_exponential_pathology () =
  (* the paper's criticism of ref [2]: all points on an origin-centric circle
     are perfectly correlated *)
  let k = K.Radial_exponential { c = 2.0 } in
  let a = P.make 1.0 0.0 and b = P.make 0.0 1.0 in
  check_close ~tol:1e-14 "same radius => corr 1" 1.0 (K.eval k a b);
  Alcotest.(check bool) "different radius < 1" true (K.eval k a (P.make 0.5 0.0) < 1.0)

let test_matern_limit_and_decay () =
  let k = K.Matern { b = 2.0; s = 2.5 } in
  check_close ~tol:1e-6 "K(0) = 1" 1.0 (K.eval_distance k 0.0);
  check_close ~tol:1e-6 "K(tiny) ~ 1" 1.0 (K.eval_distance k 1e-9);
  let v1 = K.eval_distance k 0.3 and v2 = K.eval_distance k 0.8 in
  Alcotest.(check bool) "monotone decay" true (1.0 > v1 && v1 > v2 && v2 > 0.0)

let test_matern_half_integer_closed_form () =
  (* s = 1.5 => nu = 0.5: Matern profile reduces to exp(-b v) *)
  let b = 2.3 in
  let k = K.Matern { b; s = 1.5 } in
  List.iter
    (fun v -> check_close ~tol:1e-9 "exp form" (exp (-.b *. v)) (K.eval_distance k v))
    [ 0.1; 0.5; 1.2 ]

let test_isotropy_classification () =
  Alcotest.(check bool) "gaussian iso" true (K.is_isotropic (K.Gaussian { c = 1.0 }));
  Alcotest.(check bool) "separable not" false (K.is_isotropic (K.Separable_exp_l1 { c = 1.0 }));
  Alcotest.(check bool) "radial not" false (K.is_isotropic (K.Radial_exponential { c = 1.0 }))

let test_eval_distance_domain () =
  Alcotest.check_raises "negative" (Invalid_argument "Kernel.eval_distance: negative distance")
    (fun () -> ignore (K.eval_distance (K.Gaussian { c = 1.0 }) (-0.5)));
  Alcotest.(check bool) "non-isotropic raises" true
    (match K.eval_distance (K.Separable_exp_l1 { c = 1.0 }) 0.5 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_validate () =
  Alcotest.(check bool) "valid" true (K.validate (K.Gaussian { c = 1.0 }) = Ok ());
  Alcotest.(check bool) "bad c" true (Result.is_error (K.validate (K.Gaussian { c = 0.0 })));
  Alcotest.(check bool) "bad matern s" true
    (Result.is_error (K.validate (K.Matern { b = 1.0; s = 1.0 })))

let test_anisotropic_gaussian () =
  let k = K.Anisotropic_gaussian { cx = 4.0; cy = 1.0 } in
  (* same separation, different axis: x-axis decorrelates faster *)
  let o = origin in
  let along_x = K.eval k o (P.make 0.5 0.0) in
  let along_y = K.eval k o (P.make 0.0 0.5) in
  Alcotest.(check bool) "x decays faster" true (along_x < along_y);
  check_close ~tol:1e-14 "x value" (exp (-1.0)) along_x;
  check_close ~tol:1e-14 "y value" (exp (-0.25)) along_y;
  Alcotest.(check bool) "not isotropic" false (K.is_isotropic k);
  (* valid: product of two 1-D gaussian kernels *)
  Alcotest.(check bool) "PSD" true
    (Kernels.Validity.is_psd_on k
       (Kernels.Validity.random_points ~seed:6 ~n:40 Geometry.Rect.unit_die))

(* ---------- Radial profile tables ---------- *)

let die_diameter = 2.0 *. sqrt 2.0

let test_profile_table_accuracy () =
  (* the table must stay inside its advertised error bound across the whole
     domain diameter, probed densely at points incommensurate with the grid *)
  List.iter
    (fun kernel ->
      match K.radial_profile kernel ~vmax:die_diameter with
      | None -> Alcotest.failf "no table for %s" (K.name kernel)
      | Some tbl ->
          let budget = K.profile_table_max_error tbl in
          Alcotest.(check bool) "budget within tolerance" true (budget <= 1e-9);
          let worst = ref 0.0 in
          for i = 0 to 9999 do
            let v = die_diameter *. (float_of_int i +. 0.618034) /. 10000.0 in
            let err = Float.abs (K.profile_eval tbl v -. K.eval_distance kernel v) in
            worst := Float.max !worst err
          done;
          (* the guard measures on finitely many probes; allow 5x slack *)
          Alcotest.(check bool)
            (Printf.sprintf "%s worst %.2e within 5x budget" (K.name kernel) !worst)
            true
            (!worst <= 5.0 *. Float.max budget 1e-12))
    [
      K.Gaussian { c = 2.8 };
      K.Exponential { c = 1.5 };
      K.Matern { b = 2.0; s = 2.5 };
      K.Matern { b = 2.0; s = 2.3 };
      K.Spherical { rho = 1.3 };
    ]

let test_profile_table_clamps () =
  match K.radial_profile (K.Gaussian { c = 2.8 }) ~vmax:die_diameter with
  | None -> Alcotest.fail "no table"
  | Some tbl ->
      check_close ~tol:1e-15 "v=0" 1.0 (K.profile_eval tbl 0.0);
      check_close ~tol:1e-12 "beyond vmax clamps"
        (K.profile_eval tbl die_diameter)
        (K.profile_eval tbl (2.0 *. die_diameter))

let test_profile_table_rejects_kink () =
  (* the linear cone's slope kink at rho lives inside a single table
     interval; the curvature-targeted guard must find it and reject *)
  let diag = Util.Diag.create () in
  (match K.radial_profile ~diag (K.Linear_cone { rho = 1.0 }) ~vmax:die_diameter with
  | Some _ -> Alcotest.fail "kinked profile must be rejected"
  | None -> ());
  Alcotest.(check bool) "degraded fallback recorded" true
    (Util.Diag.count ~code:`Degraded_fallback diag > 0)

let test_profile_table_none_for_non_isotropic_or_faulty () =
  Alcotest.(check bool) "separable" true
    (K.radial_profile (K.Separable_exp_l1 { c = 1.0 }) ~vmax:die_diameter = None);
  let faulty =
    K.Faulty { base = K.Gaussian { c = 2.8 }; plan = Util.Fault.plan ~first:max_int Util.Fault.Nan }
  in
  Alcotest.(check bool) "faulty" true (K.radial_profile faulty ~vmax:die_diameter = None)

let test_profile_table_invalid_args () =
  Alcotest.(check bool) "bad vmax" true
    (match K.radial_profile (K.Gaussian { c = 1.0 }) ~vmax:0.0 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "bad points" true
    (match K.radial_profile ~points:1 (K.Gaussian { c = 1.0 }) ~vmax:1.0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ---------- Validity (PSD) ---------- *)

let die_points seed n = Kernels.Validity.random_points ~seed ~n Geometry.Rect.unit_die

let test_valid_kernels_psd () =
  let pts = die_points 1 40 in
  List.iter
    (fun k ->
      Alcotest.(check bool) (K.name k) true (Kernels.Validity.is_psd_on k pts))
    [
      K.Gaussian { c = 2.8 };
      K.Exponential { c = 1.5 };
      K.Separable_exp_l1 { c = 1.2 };
      K.Matern { b = 2.0; s = 2.5 };
      K.Spherical { rho = 1.0 };
    ]

let test_gram_unit_diagonal () =
  let pts = die_points 2 10 in
  let g = Kernels.Validity.gram (K.Gaussian { c = 2.0 }) pts in
  for i = 0 to 9 do
    check_close ~tol:1e-12 "diag" 1.0 (Linalg.Mat.get g i i)
  done;
  Alcotest.(check bool) "symmetric" true (Linalg.Mat.is_symmetric g)

let test_linear_cone_2d_invalid () =
  (* the isotropic linear cone is not guaranteed PSD in 2-D (the paper's
     stated reason for fitting a Gaussian instead); find a witness set *)
  let witnesses =
    List.exists
      (fun seed ->
        let pts = die_points seed 60 in
        not (Kernels.Validity.is_psd_on ~tol:1e-12 (K.Linear_cone { rho = 0.8 }) pts))
      [ 1; 2; 3; 4; 5 ]
  in
  Alcotest.(check bool) "cone indefinite on some point set" true witnesses

(* ---------- Fit ---------- *)

let test_golden_section_quadratic () =
  let x = Kernels.Fit.golden_section ~lo:(-10.0) ~hi:10.0 (fun x -> (x -. 3.0) ** 2.0) in
  check_close ~tol:1e-6 "minimum" 3.0 x

let test_golden_section_invalid () =
  Alcotest.check_raises "bad bracket" (Invalid_argument "Fit.golden_section: requires lo < hi")
    (fun () -> ignore (Kernels.Fit.golden_section ~lo:1.0 ~hi:1.0 (fun x -> x)))

let test_gaussian_fits_cone_better () =
  (* Fig 3(a): Gaussian fit beats exponential fit on the linear cone *)
  let g = Kernels.Fit.fit_gaussian_to_cone ~dim:`D1 ~rho:1.0 ~vmax:2.0 () in
  let e = Kernels.Fit.fit_exponential_to_cone ~dim:`D1 ~rho:1.0 ~vmax:2.0 () in
  Alcotest.(check bool)
    (Printf.sprintf "gaussian sse %.4f < exponential sse %.4f" g.Kernels.Fit.sse
       e.Kernels.Fit.sse)
    true
    (g.Kernels.Fit.sse < e.Kernels.Fit.sse)

let test_fit_recovers_self () =
  (* fitting a Gaussian to an exact Gaussian profile recovers c *)
  let target v = exp (-2.5 *. v *. v) in
  let fit =
    Kernels.Fit.fit_profile_1d
      ~family:(fun c -> K.Gaussian { c })
      ~target ~vmax:2.0 ~lo:0.1 ~hi:10.0 ()
  in
  (match fit.Kernels.Fit.kernel with
  | K.Gaussian { c } -> check_close ~tol:1e-5 "c recovered" 2.5 c
  | _ -> Alcotest.fail "wrong family");
  check_close ~tol:1e-9 "sse ~ 0" 0.0 fit.Kernels.Fit.sse

let test_paper_gaussian_reasonable () =
  match Kernels.Fit.paper_gaussian () with
  | K.Gaussian { c } ->
      Alcotest.(check bool) (Printf.sprintf "c = %.3f in [1, 6]" c) true (c > 1.0 && c < 6.0)
  | _ -> Alcotest.fail "expected a gaussian"

(* ---------- Analytic KLE ---------- *)

let test_analytic_1d_transcendental_roots () =
  let c = 1.0 and a = 1.0 in
  let pairs = Kernels.Analytic_kle.exp_1d ~c ~half_width:a ~count:6 in
  Array.iter
    (fun p ->
      let w = p.Kernels.Analytic_kle.omega in
      match p.Kernels.Analytic_kle.parity with
      | Kernels.Analytic_kle.Even ->
          check_close ~tol:1e-6 "even root" 0.0 (c -. (w *. tan (w *. a)))
      | Kernels.Analytic_kle.Odd ->
          check_close ~tol:1e-6 "odd root" 0.0 (w +. (c *. tan (w *. a))))
    pairs

let test_analytic_1d_descending_eigenvalues () =
  let pairs = Kernels.Analytic_kle.exp_1d ~c:1.0 ~half_width:1.0 ~count:10 in
  for i = 1 to 9 do
    Alcotest.(check bool) "descending" true
      (pairs.(i).Kernels.Analytic_kle.lambda <= pairs.(i - 1).Kernels.Analytic_kle.lambda)
  done

let test_analytic_1d_eigenfunctions_orthonormal () =
  let a = 1.0 in
  let pairs = Kernels.Analytic_kle.exp_1d ~c:1.0 ~half_width:a ~count:4 in
  (* numerical integration on [-a, a] *)
  let integrate f =
    let n = 2000 in
    let h = 2.0 *. a /. float_of_int n in
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      let x = -.a +. ((float_of_int i +. 0.5) *. h) in
      acc := !acc +. (f x *. h)
    done;
    !acc
  in
  Array.iteri
    (fun i p ->
      let norm =
        integrate (fun x ->
            Kernels.Analytic_kle.eval_1d p x *. Kernels.Analytic_kle.eval_1d p x)
      in
      check_close ~tol:1e-4 "unit norm" 1.0 norm;
      Array.iteri
        (fun j q ->
          if j > i then begin
            let ortho =
              integrate (fun x ->
                  Kernels.Analytic_kle.eval_1d p x *. Kernels.Analytic_kle.eval_1d q x)
            in
            check_close ~tol:1e-4 "orthogonal" 0.0 ortho
          end)
        pairs)
    pairs

let test_analytic_1d_mercer () =
  (* K(x, y) ~ sum lambda f(x) f(y) with enough terms *)
  let c = 1.0 and a = 1.0 in
  let pairs = Kernels.Analytic_kle.exp_1d ~c ~half_width:a ~count:200 in
  let recon x y =
    Array.fold_left
      (fun acc (p : Kernels.Analytic_kle.eigenpair_1d) ->
        acc
        +. (p.Kernels.Analytic_kle.lambda *. Kernels.Analytic_kle.eval_1d p x
           *. Kernels.Analytic_kle.eval_1d p y))
      0.0 pairs
  in
  List.iter
    (fun (x, y) ->
      check_close ~tol:6e-3 "mercer" (exp (-.c *. Float.abs (x -. y))) (recon x y))
    [ (0.0, 0.0); (0.3, -0.4); (-0.8, 0.5) ]

let test_analytic_2d_product_structure () =
  let pairs = Kernels.Analytic_kle.exp_2d ~c:1.0 ~rect:Geometry.Rect.unit_die ~count:10 in
  Alcotest.(check int) "count" 10 (Array.length pairs);
  (* descending *)
  for i = 1 to 9 do
    Alcotest.(check bool) "descending" true
      (pairs.(i).Kernels.Analytic_kle.lambda <= pairs.(i - 1).Kernels.Analytic_kle.lambda)
  done;
  (* top eigenvalue is the square of the top 1-D eigenvalue *)
  let one_d = Kernels.Analytic_kle.exp_1d ~c:1.0 ~half_width:1.0 ~count:1 in
  check_close ~tol:1e-9 "top is product"
    (one_d.(0).Kernels.Analytic_kle.lambda ** 2.0)
    pairs.(0).Kernels.Analytic_kle.lambda

let test_analytic_2d_kernel_reconstruction () =
  let c = 1.0 in
  let pairs = Kernels.Analytic_kle.exp_2d ~c ~rect:Geometry.Rect.unit_die ~count:600 in
  let k = K.Separable_exp_l1 { c } in
  List.iter
    (fun (x, y) ->
      let expected = K.eval k x y in
      let got = Kernels.Analytic_kle.reconstruct_kernel ~rect:Geometry.Rect.unit_die pairs x y in
      check_close ~tol:0.05 "2d mercer" expected got)
    [ (origin, origin); (P.make 0.3 0.2, P.make (-0.1) 0.4) ]

(* ---------- Extract ---------- *)

let extraction_fixture =
  lazy
    (let truth = K.Gaussian { c = 2.8 } in
     let locations = Kernels.Validity.random_points ~seed:3 ~n:80 Geometry.Rect.unit_die in
     let gram = Kernels.Validity.gram truth locations in
     let mvn = Prng.Mvn.of_covariance gram in
     let samples = Prng.Mvn.sample_matrix mvn (Prng.Rng.create ~seed:5) ~n:250 in
     (truth, locations, samples))

let test_correlogram_shape () =
  let _, locations, samples = Lazy.force extraction_fixture in
  let cg = Kernels.Extract.empirical_correlogram ~locations ~samples ~bins:10 () in
  Alcotest.(check int) "bins" 10 (Array.length cg.Kernels.Extract.distances);
  (* all pairs counted exactly once *)
  let n = Array.length locations in
  Alcotest.(check int) "pair count" (n * (n - 1) / 2)
    (Array.fold_left ( + ) 0 cg.Kernels.Extract.counts);
  (* short-distance bins show high correlation, long-distance low *)
  Alcotest.(check bool) "near corr high" true (cg.Kernels.Extract.correlations.(0) > 0.7);
  Alcotest.(check bool) "monotone-ish" true
    (cg.Kernels.Extract.correlations.(0) > cg.Kernels.Extract.correlations.(8))

let test_correlogram_matches_kernel () =
  let truth, locations, samples = Lazy.force extraction_fixture in
  let cg = Kernels.Extract.empirical_correlogram ~locations ~samples ~bins:10 () in
  Array.iteri
    (fun b d ->
      if cg.Kernels.Extract.counts.(b) > 30 then begin
        let expected = K.eval_distance truth d in
        let got = cg.Kernels.Extract.correlations.(b) in
        Alcotest.(check bool)
          (Printf.sprintf "bin %d: %.3f vs %.3f" b expected got)
          true
          (Float.abs (expected -. got) < 0.12)
      end)
    cg.Kernels.Extract.distances

let test_extract_recovers_truth () =
  let _, locations, samples = Lazy.force extraction_fixture in
  let results = Kernels.Extract.extract ~locations ~samples () in
  match List.find_opt (fun (e : Kernels.Extract.extraction) -> e.valid) results with
  | None -> Alcotest.fail "no valid kernel extracted"
  | Some best -> (
      match best.kernel with
      | K.Gaussian { c } ->
          Alcotest.(check bool) (Printf.sprintf "c = %.3f near 2.8" c) true
            (Float.abs (c -. 2.8) < 0.5)
      | k -> Alcotest.failf "wrong family extracted: %s" (K.name k))

let test_extract_sorted_by_sse () =
  let _, locations, samples = Lazy.force extraction_fixture in
  let results = Kernels.Extract.extract ~locations ~samples () in
  let sses = List.map (fun (e : Kernels.Extract.extraction) -> e.sse) results in
  Alcotest.(check bool) "sorted" true (List.sort Float.compare sses = sses)

let test_correlogram_input_validation () =
  let _, locations, _ = Lazy.force extraction_fixture in
  let bad = Linalg.Mat.create 2 (Array.length locations) in
  Alcotest.(check bool) "too few rows" true
    (match Kernels.Extract.empirical_correlogram ~locations ~samples:bad () with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ---------- qcheck ---------- *)

let arb_dist = QCheck.float_range 0.0 2.0

let prop_kernels_bounded =
  QCheck.Test.make ~name:"isotropic kernels in [0, 1]" ~count:200 arb_dist (fun v ->
      List.for_all
        (fun k ->
          let x = K.eval_distance k v in
          x >= -1e-12 && x <= 1.0 +. 1e-9)
        [ K.Gaussian { c = 2.8 }; K.Exponential { c = 1.5 };
          K.Matern { b = 2.0; s = 2.5 }; K.Spherical { rho = 1.0 } ])

let prop_kernels_monotone =
  QCheck.Test.make ~name:"isotropic kernels decay monotonically" ~count:200
    (QCheck.pair arb_dist arb_dist) (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      List.for_all
        (fun k -> K.eval_distance k lo +. 1e-12 >= K.eval_distance k hi)
        [ K.Gaussian { c = 2.8 }; K.Exponential { c = 1.5 };
          K.Matern { b = 2.0; s = 3.0 }; K.Spherical { rho = 1.2 };
          K.Linear_cone { rho = 1.0 } ])

let () =
  Alcotest.run "kernels"
    [
      ( "kernel",
        [
          Alcotest.test_case "unit at zero distance" `Quick test_unit_at_zero_distance;
          Alcotest.test_case "symmetry" `Quick test_symmetry;
          Alcotest.test_case "gaussian profile" `Quick test_gaussian_profile;
          Alcotest.test_case "exponential profile" `Quick test_exponential_profile;
          Alcotest.test_case "linear cone clamps" `Quick test_linear_cone_clamps;
          Alcotest.test_case "spherical support" `Quick test_spherical_support;
          Alcotest.test_case "separable L1 factorizes" `Quick test_separable_l1_factorizes;
          Alcotest.test_case "radial-exp pathology (ref [2])" `Quick test_radial_exponential_pathology;
          Alcotest.test_case "matern limit and decay" `Quick test_matern_limit_and_decay;
          Alcotest.test_case "matern s=1.5 closed form" `Quick test_matern_half_integer_closed_form;
          Alcotest.test_case "isotropy classification" `Quick test_isotropy_classification;
          Alcotest.test_case "anisotropic gaussian" `Quick test_anisotropic_gaussian;
          Alcotest.test_case "eval_distance domain" `Quick test_eval_distance_domain;
          Alcotest.test_case "validate" `Quick test_validate;
        ] );
      ( "profile_table",
        [
          Alcotest.test_case "accuracy across the die diameter" `Quick
            test_profile_table_accuracy;
          Alcotest.test_case "clamps at 0 and vmax" `Quick test_profile_table_clamps;
          Alcotest.test_case "rejects kinked profile" `Quick test_profile_table_rejects_kink;
          Alcotest.test_case "none for non-isotropic or faulty" `Quick
            test_profile_table_none_for_non_isotropic_or_faulty;
          Alcotest.test_case "invalid arguments" `Quick test_profile_table_invalid_args;
        ] );
      ( "validity",
        [
          Alcotest.test_case "valid kernels are PSD" `Quick test_valid_kernels_psd;
          Alcotest.test_case "gram unit diagonal" `Quick test_gram_unit_diagonal;
          Alcotest.test_case "2-D linear cone can be indefinite" `Quick test_linear_cone_2d_invalid;
        ] );
      ( "fit",
        [
          Alcotest.test_case "golden section on quadratic" `Quick test_golden_section_quadratic;
          Alcotest.test_case "golden section invalid bracket" `Quick test_golden_section_invalid;
          Alcotest.test_case "Fig 3a: gaussian beats exponential" `Quick test_gaussian_fits_cone_better;
          Alcotest.test_case "fit recovers exact profile" `Quick test_fit_recovers_self;
          Alcotest.test_case "paper gaussian parameter sane" `Quick test_paper_gaussian_reasonable;
        ] );
      ( "analytic_kle",
        [
          Alcotest.test_case "transcendental roots" `Quick test_analytic_1d_transcendental_roots;
          Alcotest.test_case "descending eigenvalues" `Quick test_analytic_1d_descending_eigenvalues;
          Alcotest.test_case "orthonormal eigenfunctions" `Quick test_analytic_1d_eigenfunctions_orthonormal;
          Alcotest.test_case "1-D Mercer reconstruction" `Quick test_analytic_1d_mercer;
          Alcotest.test_case "2-D product structure" `Quick test_analytic_2d_product_structure;
          Alcotest.test_case "2-D kernel reconstruction" `Quick test_analytic_2d_kernel_reconstruction;
        ] );
      ( "extract",
        [
          Alcotest.test_case "correlogram shape" `Quick test_correlogram_shape;
          Alcotest.test_case "correlogram matches kernel" `Quick test_correlogram_matches_kernel;
          Alcotest.test_case "recovers the true kernel" `Quick test_extract_recovers_truth;
          Alcotest.test_case "results sorted by sse" `Quick test_extract_sorted_by_sse;
          Alcotest.test_case "input validation" `Quick test_correlogram_input_validation;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_kernels_bounded; prop_kernels_monotone ] );
    ]
