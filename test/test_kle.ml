module K = Kernels.Kernel
module P = Geometry.Point

let check_close ?(tol = 1e-10) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

(* shared coarse test meshes (structured => fully deterministic) *)
let mesh_coarse = lazy (Geometry.Mesh.uniform Geometry.Rect.unit_die ~divisions:6)
let mesh_fine = lazy (Geometry.Mesh.uniform Geometry.Rect.unit_die ~divisions:10)

let gaussian = K.Gaussian { c = 2.8 }

let solve_coarse =
  lazy (Kle.Galerkin.solve ~solver:Kle.Galerkin.Dense (Lazy.force mesh_coarse) gaussian)

(* ---------- Galerkin ---------- *)

let test_assemble_symmetric () =
  let c = Kle.Galerkin.assemble (Lazy.force mesh_coarse) gaussian in
  Alcotest.(check bool) "symmetric" true (Linalg.Mat.is_symmetric c)

let test_trace_equals_area () =
  (* normalized kernel: K(x,x) = 1 so the Galerkin trace is the die area *)
  check_close ~tol:1e-9 "trace" 4.0 (Kle.Galerkin.trace (Lazy.force mesh_coarse) gaussian)

let test_eigenvalues_nonnegative_descending () =
  let s = Lazy.force solve_coarse in
  let vals = s.Kle.Galerkin.eigenvalues in
  Array.iter (fun v -> Alcotest.(check bool) "nonneg" true (v >= 0.0)) vals;
  for i = 1 to Array.length vals - 1 do
    Alcotest.(check bool) "descending" true (vals.(i) <= vals.(i - 1) +. 1e-12)
  done

let test_eigenvalue_sum_equals_trace () =
  (* dense solve computes all n pairs; their sum equals the matrix trace *)
  let s = Lazy.force solve_coarse in
  check_close ~tol:1e-8 "sum = trace" 4.0 (Kle.Galerkin.eigenvalue_sum_bound s)

let test_eigenfunctions_l2_orthonormal () =
  let s = Lazy.force solve_coarse in
  let mesh = Lazy.force mesh_coarse in
  let n = Geometry.Mesh.size mesh in
  let d = s.Kle.Galerkin.coefficients in
  (* check the first few pairs *)
  for a = 0 to 5 do
    for b = a to 5 do
      let acc = ref 0.0 in
      for i = 0 to n - 1 do
        acc :=
          !acc
          +. (Linalg.Mat.get d i a *. Linalg.Mat.get d i b *. mesh.Geometry.Mesh.areas.(i))
      done;
      check_close ~tol:1e-9
        (Printf.sprintf "inner (%d, %d)" a b)
        (if a = b then 1.0 else 0.0)
        !acc
    done
  done

let test_lanczos_solver_matches_dense () =
  let mesh = Lazy.force mesh_coarse in
  let dense = Kle.Galerkin.solve ~solver:Kle.Galerkin.Dense mesh gaussian in
  let lanczos =
    Kle.Galerkin.solve ~solver:(Kle.Galerkin.Lanczos { count = 20 }) mesh gaussian
  in
  for i = 0 to 19 do
    check_close ~tol:1e-8 "eigenvalue"
      dense.Kle.Galerkin.eigenvalues.(i)
      lanczos.Kle.Galerkin.eigenvalues.(i)
  done

let test_galerkin_vs_analytic_separable () =
  (* validation against Ghanem-Spanos closed form for exp(-c L1) *)
  let c = 1.0 in
  let kernel = K.Separable_exp_l1 { c } in
  let mesh = Lazy.force mesh_fine in
  let sol = Kle.Galerkin.solve ~solver:(Kle.Galerkin.Lanczos { count = 10 }) mesh kernel in
  let analytic = Kernels.Analytic_kle.exp_2d ~c ~rect:Geometry.Rect.unit_die ~count:10 in
  for i = 0 to 7 do
    let exact = analytic.(i).Kernels.Analytic_kle.lambda in
    let got = sol.Kle.Galerkin.eigenvalues.(i) in
    Alcotest.(check bool)
      (Printf.sprintf "pair %d: %.4f vs %.4f" i exact got)
      true
      (Float.abs (got -. exact) /. exact < 0.05)
  done

let test_midedge_quadrature_more_accurate () =
  let c = 1.0 in
  let kernel = K.Separable_exp_l1 { c } in
  let mesh = Lazy.force mesh_coarse in
  let exact =
    (Kernels.Analytic_kle.exp_2d ~c ~rect:Geometry.Rect.unit_die ~count:1).(0)
      .Kernels.Analytic_kle.lambda
  in
  let err quad =
    let sol = Kle.Galerkin.solve ~quadrature:quad ~solver:(Kle.Galerkin.Lanczos { count = 1 }) mesh kernel in
    Float.abs (sol.Kle.Galerkin.eigenvalues.(0) -. exact)
  in
  let e_centroid = err Kle.Galerkin.Centroid in
  let e_midedge = err Kle.Galerkin.Midedge in
  Alcotest.(check bool)
    (Printf.sprintf "midedge %.2e <= centroid %.2e" e_midedge e_centroid)
    true (e_midedge <= e_centroid)

let test_eigenvalue_convergence_with_mesh () =
  (* Theorem 2: eigenvalue error decreases as h -> 0 *)
  let c = 1.0 in
  let kernel = K.Separable_exp_l1 { c } in
  let exact =
    (Kernels.Analytic_kle.exp_2d ~c ~rect:Geometry.Rect.unit_die ~count:1).(0)
      .Kernels.Analytic_kle.lambda
  in
  let err divisions =
    let mesh = Geometry.Mesh.uniform Geometry.Rect.unit_die ~divisions in
    let sol = Kle.Galerkin.solve ~solver:(Kle.Galerkin.Lanczos { count = 1 }) mesh kernel in
    Float.abs (sol.Kle.Galerkin.eigenvalues.(0) -. exact)
  in
  let e1 = err 3 and e2 = err 9 in
  Alcotest.(check bool) (Printf.sprintf "converges (%.2e -> %.2e)" e1 e2) true (e2 < e1)

let test_indefinite_kernel_rejected () =
  (* the 2-D linear cone is indefinite on fine meshes; the solver should
     refuse rather than silently clamp a large negative spectrum *)
  let mesh = Lazy.force mesh_fine in
  let diag = Util.Diag.create () in
  let raised =
    match
      Kle.Galerkin.solve ~solver:Kle.Galerkin.Dense ~diag mesh (K.Linear_cone { rho = 0.5 })
    with
    | _ -> false
    | exception Util.Diag.Failure e -> e.Util.Diag.code = `Not_psd
  in
  Alcotest.(check bool) "indefinite rejected with `Not_psd" true raised;
  Alcotest.(check bool) "failure recorded" true (Util.Diag.count ~code:`Not_psd diag > 0)

let test_nan_kernel_caught_at_assembly () =
  (* an injected NaN in a kernel evaluation must be caught by the Galerkin
     non-finite guard, not propagate into the eigensolver *)
  let mesh = Lazy.force mesh_coarse in
  let plan = Util.Fault.plan ~first:5 Util.Fault.Nan in
  let faulty = K.Faulty { base = gaussian; plan } in
  let diag = Util.Diag.create () in
  let raised =
    match Kle.Galerkin.solve ~solver:Kle.Galerkin.Dense ~diag mesh faulty with
    | _ -> false
    | exception Util.Diag.Failure e ->
        e.Util.Diag.code = `Non_finite && e.Util.Diag.stage = "galerkin.assemble"
  in
  Alcotest.(check bool) "guard raised `Non_finite" true raised;
  Alcotest.(check bool) "fault actually fired" true (Util.Fault.fired plan >= 1);
  Alcotest.(check bool) "error recorded" true (Util.Diag.count ~code:`Non_finite diag > 0)

let test_lanczos_no_convergence_falls_back_to_dense () =
  (* cap the Krylov budget so Lanczos genuinely fails, then check the dense
     fallback returns the same leading eigenvalues it would have computed.
     The exponential kernel's polynomially decaying spectrum (unlike the
     Gaussian's super-exponential one) keeps deep pairs unconverged in a
     tiny Krylov space. *)
  let mesh = Lazy.force mesh_coarse in
  let kernel = K.Exponential { c = 1.5 } in
  let diag = Util.Diag.create () in
  let count = 8 in
  let sol =
    Kle.Galerkin.solve ~solver:(Kle.Galerkin.Lanczos { count }) ~lanczos_max_dim:9 ~diag
      mesh kernel
  in
  Alcotest.(check bool) "no-convergence recorded" true
    (Util.Diag.count ~code:`No_convergence diag > 0);
  Alcotest.(check bool) "fallback recorded" true
    (Util.Diag.count ~code:`Degraded_fallback diag > 0);
  Alcotest.(check int) "leading pairs returned" count
    (Array.length sol.Kle.Galerkin.eigenvalues);
  let dense = Kle.Galerkin.solve ~solver:Kle.Galerkin.Dense mesh kernel in
  Array.iteri
    (fun j v ->
      check_close ~tol:1e-9
        (Printf.sprintf "eigenvalue %d matches dense" j)
        dense.Kle.Galerkin.eigenvalues.(j) v)
    sol.Kle.Galerkin.eigenvalues

(* ---------- Model ---------- *)

let test_out_of_domain_point_clamps () =
  (* regression: a point outside the die (or exactly on the boundary,
     between triangles) used to raise bare Not_found; it must now clamp to
     the nearest triangle and record a diagnostic *)
  let model = Kle.Model.create ~r:4 (Lazy.force solve_coarse) in
  let diag = Util.Diag.create () in
  let outside = { P.x = 1.75; P.y = 0.4 } in
  let v = Kle.Model.eval_eigenfunction ~diag model 0 outside in
  Alcotest.(check bool) "finite value" true (Float.is_finite v);
  Alcotest.(check int) "clamp recorded" 1 (Util.Diag.count ~code:`Out_of_domain diag);
  (* the clamped evaluation equals the eigenfunction at the nearest
     in-domain location *)
  let inside = { P.x = 0.999; P.y = 0.4 } in
  let v_in = Kle.Model.eval_eigenfunction model 0 inside in
  check_close ~tol:1e-12 "clamps to nearest triangle" v_in v;
  (* the other clamped entry points stay total too *)
  let kv = Kle.Model.reconstruct_kernel ~diag model outside outside in
  Alcotest.(check bool) "reconstruct finite" true (Float.is_finite kv);
  let var = Kle.Model.variance_at ~diag model outside in
  Alcotest.(check bool) "variance finite" true (Float.is_finite var)

let test_sampler_out_of_domain_location_clamps () =
  let model = Kle.Model.create ~r:4 (Lazy.force solve_coarse) in
  let diag = Util.Diag.create () in
  let locations = [| { P.x = 0.25; P.y = 0.25 }; { P.x = -0.5; P.y = 3.0 } |] in
  let s = Kle.Sampler.create ~diag model locations in
  Alcotest.(check int) "all locations resolved" 2 (Kle.Sampler.location_count s);
  Alcotest.(check int) "one aggregate clamp warning" 1
    (Util.Diag.count ~code:`Out_of_domain diag);
  let rng = Prng.Rng.create ~seed:5 in
  let m = Kle.Sampler.sample_matrix s rng ~n:8 in
  Alcotest.(check bool) "samples finite" true (Linalg.Mat.is_finite m)

let test_choose_r_rule () =
  (* eigenvalues 8, 4, 2, 1, ... fast decay: small r *)
  let vals = [| 8.0; 4.0; 2.0; 1.0; 0.001; 0.0005; 0.0001; 0.00005 |] in
  let r = Kle.Model.choose_r ~tolerance:0.01 ~n_total:100 vals in
  Alcotest.(check bool) (Printf.sprintf "r = %d reasonable" r) true (r >= 3 && r <= 8);
  (* the bound must actually hold at the chosen r *)
  let m = Array.length vals in
  let tail = ref (vals.(m - 1) *. float_of_int (100 - m)) in
  for i = r to m - 1 do
    tail := !tail +. vals.(i)
  done;
  let head = ref 0.0 in
  for i = 0 to r - 1 do
    head := !head +. vals.(i)
  done;
  Alcotest.(check bool) "bound holds" true (!tail <= 0.01 *. !head)

let test_choose_r_flat_spectrum () =
  (* flat spectrum: rule cannot satisfy the bound, returns m *)
  let vals = Array.make 10 1.0 in
  Alcotest.(check int) "returns m" 10 (Kle.Model.choose_r ~n_total:10 vals)

let test_choose_r_monotone_in_tolerance () =
  let s = Lazy.force solve_coarse in
  let n = Geometry.Mesh.size (Lazy.force mesh_coarse) in
  let r_tight = Kle.Model.choose_r ~tolerance:0.001 ~n_total:n s.Kle.Galerkin.eigenvalues in
  let r_loose = Kle.Model.choose_r ~tolerance:0.1 ~n_total:n s.Kle.Galerkin.eigenvalues in
  Alcotest.(check bool)
    (Printf.sprintf "tight %d >= loose %d" r_tight r_loose)
    true (r_tight >= r_loose)

let test_model_create_bounds () =
  let s = Lazy.force solve_coarse in
  Alcotest.(check bool) "r too large" true
    (match Kle.Model.create ~r:100000 s with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_eigenfunction_piecewise_constant () =
  let s = Lazy.force solve_coarse in
  let model = Kle.Model.create ~r:6 s in
  let mesh = Lazy.force mesh_coarse in
  (* two points in the same triangle give the same value *)
  let tri = Geometry.Mesh.triangle mesh 0 in
  let c = Geometry.Triangle.centroid tri in
  let near = P.make (c.x +. 1e-4) (c.y +. 1e-4) in
  if Geometry.Triangle.contains tri near then
    check_close ~tol:0.0 "constant on element"
      (Kle.Model.eval_eigenfunction model 0 c)
      (Kle.Model.eval_eigenfunction model 0 near)

let test_variance_at_close_to_one () =
  let s = Lazy.force solve_coarse in
  let model = Kle.Model.create ~r:40 s in
  List.iter
    (fun p ->
      let v = Kle.Model.variance_at model p in
      Alcotest.(check bool) (Printf.sprintf "var %.3f in (0.5, 1.01]" v) true
        (v > 0.5 && v <= 1.01))
    [ P.make 0.0 0.0; P.make 0.5 (-0.5); P.make (-0.9) 0.9 ]

let test_captured_variance_increases_with_r () =
  let s = Lazy.force solve_coarse in
  let f r = Kle.Model.captured_variance_fraction (Kle.Model.create ~r s) in
  Alcotest.(check bool) "monotone" true (f 5 < f 20 && f 20 <= 1.0 +. 1e-9)

let test_reconstruction_error_decreases_with_r () =
  let s = Lazy.force solve_coarse in
  let e r = Kle.Model.reconstruction_error (Kle.Model.create ~r s) in
  let e5 = e 5 and e30 = e 30 in
  Alcotest.(check bool) (Printf.sprintf "e(30)=%.4f < e(5)=%.4f" e30 e5) true (e30 < e5)

let test_reconstruction_error_grid_bounded () =
  let s = Lazy.force solve_coarse in
  let model = Kle.Model.create ~r:30 s in
  let e = Kle.Model.reconstruction_error_grid ~grid:15 model in
  Alcotest.(check bool) (Printf.sprintf "grid err %.3f < 0.5" e) true (e < 0.5)

let test_reconstruction_pairwise_bounded () =
  let s = Lazy.force solve_coarse in
  let model = Kle.Model.create ~r:40 s in
  let e = Kle.Model.reconstruction_error_pairwise ~stride:5 model in
  Alcotest.(check bool) (Printf.sprintf "pairwise err %.3f < 0.25" e) true (e < 0.25)

let test_d_lambda_shape_and_scale () =
  let s = Lazy.force solve_coarse in
  let model = Kle.Model.create ~r:8 s in
  let d = Kle.Model.d_lambda model in
  Alcotest.(check int) "rows" (Geometry.Mesh.size (Lazy.force mesh_coarse)) (Linalg.Mat.rows d);
  Alcotest.(check int) "cols" 8 (Linalg.Mat.cols d);
  (* column j scaled by sqrt(lambda_j): norm² weighted by areas = lambda_j *)
  let mesh = Lazy.force mesh_coarse in
  let acc = ref 0.0 in
  for i = 0 to Linalg.Mat.rows d - 1 do
    let v = Linalg.Mat.get d i 0 in
    acc := !acc +. (v *. v *. mesh.Geometry.Mesh.areas.(i))
  done;
  check_close ~tol:1e-9 "column scale" s.Kle.Galerkin.eigenvalues.(0) !acc

(* ---------- Sampler ---------- *)

let sampler_fixture =
  lazy
    (let s = Lazy.force solve_coarse in
     let model = Kle.Model.create ~r:30 s in
     let locations =
       Kernels.Validity.random_points ~seed:9 ~n:25 Geometry.Rect.unit_die
     in
     (model, locations, Kle.Sampler.create model locations))

let test_sampler_dims () =
  let model, locations, sampler = Lazy.force sampler_fixture in
  Alcotest.(check int) "r" model.Kle.Model.r (Kle.Sampler.dim sampler);
  Alcotest.(check int) "locations" (Array.length locations) (Kle.Sampler.location_count sampler)

let test_sampler_triangles_contain_locations () =
  let model, locations, sampler = Lazy.force sampler_fixture in
  let mesh = model.Kle.Model.solution.Kle.Galerkin.mesh in
  Array.iteri
    (fun i p ->
      let tri = Geometry.Mesh.triangle mesh (Kle.Sampler.triangle_of_location sampler i) in
      Alcotest.(check bool) "contains" true (Geometry.Triangle.contains ~tol:1e-9 tri p))
    locations

let test_sampler_deterministic () =
  let _, _, sampler = Lazy.force sampler_fixture in
  let s1 = Kle.Sampler.sample sampler (Prng.Rng.create ~seed:5) in
  let s2 = Kle.Sampler.sample sampler (Prng.Rng.create ~seed:5) in
  Alcotest.(check (array (float 0.0))) "deterministic" s1 s2

let test_sampler_moments () =
  let _, locations, sampler = Lazy.force sampler_fixture in
  let rng = Prng.Rng.create ~seed:77 in
  let n = 30_000 in
  let m = Kle.Sampler.sample_matrix sampler rng ~n in
  Alcotest.(check int) "rows" n (Linalg.Mat.rows m);
  (* per-location mean ~ 0, variance ~ truncated kernel variance (<= 1) *)
  let cov = Stats.Correlation.column_covariance m in
  Array.iteri
    (fun g _ ->
      let v = Linalg.Mat.get cov g g in
      Alcotest.(check bool) (Printf.sprintf "var %.3f" v) true (v > 0.6 && v < 1.1))
    locations

let test_sampler_covariance_matches_kernel () =
  let _, locations, sampler = Lazy.force sampler_fixture in
  let rng = Prng.Rng.create ~seed:99 in
  let n = 30_000 in
  let m = Kle.Sampler.sample_matrix sampler rng ~n in
  let corr = Stats.Correlation.column_correlation m in
  (* compare empirical correlation to the kernel at a handful of pairs *)
  let pairs = [ (0, 1); (2, 7); (4, 15); (10, 20); (3, 24) ] in
  List.iter
    (fun (i, j) ->
      let expected = K.eval gaussian locations.(i) locations.(j) in
      let got = Linalg.Mat.get corr i j in
      Alcotest.(check bool)
        (Printf.sprintf "pair (%d,%d): kernel %.3f vs sampled %.3f" i j expected got)
        true
        (Float.abs (expected -. got) < 0.12))
    pairs

let test_sample_matrix_variants_agree_statistically () =
  let _, _, sampler = Lazy.force sampler_fixture in
  let n = 20_000 in
  let m1 = Kle.Sampler.sample_matrix sampler (Prng.Rng.create ~seed:1) ~n in
  let m2 = Kle.Sampler.sample_matrix_direct sampler (Prng.Rng.create ~seed:2) ~n in
  let c1 = Stats.Correlation.column_covariance m1 in
  let c2 = Stats.Correlation.column_covariance m2 in
  Alcotest.(check bool) "same covariance" true (Linalg.Mat.max_abs_diff c1 c2 < 0.1)

let test_sample_with_xi_consistent () =
  let model, _, sampler = Lazy.force sampler_fixture in
  let field, xi = Kle.Sampler.sample_with_xi sampler (Prng.Rng.create ~seed:3) in
  Alcotest.(check int) "xi dim" model.Kle.Model.r (Array.length xi);
  (* field must equal B xi, i.e. reconstruct from xi manually *)
  let d = Kle.Model.d_lambda model in
  let mesh_field = Linalg.Mat.mul_vec d xi in
  Array.iteri
    (fun g v ->
      let tri = Kle.Sampler.triangle_of_location sampler g in
      check_close ~tol:1e-10 "field matches expansion" mesh_field.(tri) v)
    field

let test_sample_matrix_with_gaussian_equivalence () =
  (* feeding i.i.d. gaussians through sample_matrix_with must reproduce the
     statistics of the built-in samplers *)
  let _, _, sampler = Lazy.force sampler_fixture in
  let n = 15_000 in
  let xi = Prng.Gaussian.matrix (Prng.Rng.create ~seed:8) ~rows:n ~cols:(Kle.Sampler.dim sampler) in
  let m = Kle.Sampler.sample_matrix_with sampler ~xi in
  let c1 = Stats.Correlation.column_covariance m in
  let m2 = Kle.Sampler.sample_matrix_direct sampler (Prng.Rng.create ~seed:9) ~n in
  let c2 = Stats.Correlation.column_covariance m2 in
  Alcotest.(check bool) "same covariance" true (Linalg.Mat.max_abs_diff c1 c2 < 0.12)

let test_sample_matrix_with_width_check () =
  let _, _, sampler = Lazy.force sampler_fixture in
  let xi = Linalg.Mat.create 4 3 in
  Alcotest.(check bool) "raises" true
    (match Kle.Sampler.sample_matrix_with sampler ~xi with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ---------- matrix-free operator ---------- *)

(* every shipped kernel family, isotropic and not (Faulty excluded: a fault
   plan's internal counter advances per evaluation, so the assembled and
   matrix-free paths would see different fault sites by construction) *)
let operator_kernels =
  [
    gaussian;
    K.Exponential { c = 1.5 };
    K.Separable_exp_l1 { c = 1.0 };
    K.Radial_exponential { c = 1.2 };
    K.Matern { b = 2.0; s = 2.5 };
    K.Linear_cone { rho = 1.0 };
    K.Spherical { rho = 1.0 };
    K.Anisotropic_gaussian { cx = 2.0; cy = 0.7 };
  ]

let random_vec seed n =
  let rng = Prng.Rng.create ~seed in
  Array.init n (fun _ -> Prng.Rng.uniform rng -. 0.5)

let test_operator_exact_apply_matches_assembled () =
  (* property: in exact mode the matrix-free apply is the same linear map as
     the assembled matrix, for every shipped kernel, to 1e-12 (the paths sum
     the same products in different orders) *)
  let mesh = Lazy.force mesh_fine in
  let n = Geometry.Mesh.size mesh in
  List.iter
    (fun kernel ->
      let c = Kle.Galerkin.assemble mesh kernel in
      let op = Kle.Operator.galerkin ~mode:Kle.Operator.Exact mesh kernel in
      Alcotest.(check int) "dim" n (Kle.Operator.dim op);
      for trial = 0 to 2 do
        let x = random_vec ((31 * trial) + 7) n in
        let y_dense = Linalg.Mat.mul_vec c x in
        let y_free = Kle.Operator.apply op x in
        Array.iteri
          (fun i v ->
            check_close ~tol:1e-12
              (Printf.sprintf "%s row %d trial %d" (K.name kernel) i trial)
              y_dense.(i) v)
          y_free
      done)
    operator_kernels

let test_operator_table_apply_close_to_assembled () =
  (* with the radial profile table on (default), isotropic kernels stay
     within the table's error budget of the assembled map *)
  let mesh = Lazy.force mesh_fine in
  let n = Geometry.Mesh.size mesh in
  List.iter
    (fun kernel ->
      let c = Kle.Galerkin.assemble mesh kernel in
      let op = Kle.Operator.galerkin mesh kernel in
      let x = random_vec 11 n in
      let y_dense = Linalg.Mat.mul_vec c x in
      let y_free = Kle.Operator.apply op x in
      Array.iteri
        (fun i v ->
          check_close ~tol:1e-7
            (Printf.sprintf "%s row %d" (K.name kernel) i)
            y_dense.(i) v)
        y_free)
    [ gaussian; K.Exponential { c = 1.5 }; K.Matern { b = 2.0; s = 2.5 } ]

let test_operator_apply_jobs_independent () =
  (* repo invariant: results do not depend on worker count *)
  let mesh = Lazy.force mesh_fine in
  let n = Geometry.Mesh.size mesh in
  let x = random_vec 3 n in
  let y1 = Kle.Operator.apply (Kle.Operator.galerkin ~jobs:1 mesh gaussian) x in
  let y2 = Kle.Operator.apply (Kle.Operator.galerkin ~jobs:2 mesh gaussian) x in
  Alcotest.(check (array (float 0.0))) "bit-identical across jobs" y1 y2

let test_operator_midedge_quadrature () =
  let mesh = Lazy.force mesh_coarse in
  let n = Geometry.Mesh.size mesh in
  let c = Kle.Galerkin.assemble ~quadrature:Kle.Galerkin.Midedge mesh gaussian in
  let op = Kle.Operator.galerkin ~quadrature:Kle.Operator.Midedge ~mode:Kle.Operator.Exact mesh gaussian in
  let x = random_vec 19 n in
  let y_dense = Linalg.Mat.mul_vec c x in
  let y_free = Kle.Operator.apply op x in
  Array.iteri
    (fun i v -> check_close ~tol:1e-12 (Printf.sprintf "row %d" i) y_dense.(i) v)
    y_free

let test_matrix_free_solve_matches_assembled () =
  let mesh = Lazy.force mesh_fine in
  let solver = Kle.Galerkin.Lanczos { count = 10 } in
  let a = Kle.Galerkin.solve ~mode:Kle.Galerkin.Assembled ~solver mesh gaussian in
  let m = Kle.Galerkin.solve ~mode:Kle.Galerkin.Matrix_free ~solver mesh gaussian in
  Array.iteri
    (fun j v ->
      let rel = Float.abs (v -. m.Kle.Galerkin.eigenvalues.(j)) /. v in
      Alcotest.(check bool)
        (Printf.sprintf "eigenvalue %d rel err %.2e <= 1e-8" j rel)
        true (rel <= 1e-8))
    a.Kle.Galerkin.eigenvalues

let test_matrix_free_fallback_chain () =
  (* Matrix_free + starved Krylov budget -> No_convergence -> assembled
     dense fallback, with both diagnostics on record *)
  let mesh = Lazy.force mesh_coarse in
  let kernel = K.Exponential { c = 1.5 } in
  let diag = Util.Diag.create () in
  let count = 8 in
  let sol =
    Kle.Galerkin.solve ~mode:Kle.Galerkin.Matrix_free
      ~solver:(Kle.Galerkin.Lanczos { count })
      ~lanczos_max_dim:9 ~diag mesh kernel
  in
  Alcotest.(check bool) "no-convergence recorded" true
    (Util.Diag.count ~code:`No_convergence diag > 0);
  Alcotest.(check bool) "fallback recorded" true
    (Util.Diag.count ~code:`Degraded_fallback diag > 0);
  Alcotest.(check int) "leading pairs returned" count
    (Array.length sol.Kle.Galerkin.eigenvalues);
  let dense = Kle.Galerkin.solve ~solver:Kle.Galerkin.Dense mesh kernel in
  Array.iteri
    (fun j v ->
      check_close ~tol:1e-9
        (Printf.sprintf "eigenvalue %d matches dense" j)
        dense.Kle.Galerkin.eigenvalues.(j) v)
    sol.Kle.Galerkin.eigenvalues

let test_matrix_free_dense_solver_rejected () =
  let mesh = Lazy.force mesh_coarse in
  Alcotest.(check bool) "raises" true
    (match
       Kle.Galerkin.solve ~mode:Kle.Galerkin.Matrix_free ~solver:Kle.Galerkin.Dense
         mesh gaussian
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ---------- hierarchical (H-matrix) operator ---------- *)

(* small leaves so even the test meshes produce genuine far-field blocks *)
let hier_params =
  {
    Kle.Hmatrix.tol = 1e-8;
    eta = 2.0;
    leaf_size = 16;
    max_rank = 64;
  }

let test_cluster_tree_invariants () =
  let mesh = Lazy.force mesh_fine in
  let points = mesh.Geometry.Mesh.centroids in
  let n = Array.length points in
  let tree = Kle.Cluster.build ~leaf_size:16 points in
  let perm = Kle.Cluster.perm tree in
  let seen = Array.make n false in
  Array.iter (fun p -> seen.(p) <- true) perm;
  Alcotest.(check bool) "perm is a permutation" true (Array.for_all Fun.id seen);
  let rec walk idx =
    let node = Kle.Cluster.node tree idx in
    let size = node.Kle.Cluster.hi - node.Kle.Cluster.lo in
    for q = node.Kle.Cluster.lo to node.Kle.Cluster.hi - 1 do
      let p = points.(perm.(q)) in
      Alcotest.(check bool) "point inside bbox" true
        (p.P.x >= node.Kle.Cluster.xmin
        && p.P.x <= node.Kle.Cluster.xmax
        && p.P.y >= node.Kle.Cluster.ymin
        && p.P.y <= node.Kle.Cluster.ymax)
    done;
    if node.Kle.Cluster.left < 0 then
      Alcotest.(check bool) "leaf within leaf_size" true (size <= 16)
    else begin
      let l = Kle.Cluster.node tree node.Kle.Cluster.left in
      let r = Kle.Cluster.node tree node.Kle.Cluster.right in
      Alcotest.(check int) "children tile the range" size
        ((l.Kle.Cluster.hi - l.Kle.Cluster.lo) + (r.Kle.Cluster.hi - r.Kle.Cluster.lo));
      walk node.Kle.Cluster.left;
      walk node.Kle.Cluster.right
    end
  in
  walk (Kle.Cluster.root_index tree)

let test_aca_recovers_low_rank () =
  (* an exactly rank-2 matrix must be reproduced at rank <= 2 + the
     tolerance-check overshoot, to near machine precision *)
  let m = 30 and n = 25 in
  let entry i j =
    ((1.0 +. float_of_int i) *. (2.0 +. (0.1 *. float_of_int j)))
    +. (sin (float_of_int i) *. cos (float_of_int j))
  in
  match Kle.Aca.approximate ~entry ~m ~n ~tol:1e-12 ~max_rank:10 with
  | None -> Alcotest.fail "ACA stalled on a rank-2 matrix"
  | Some r ->
      Alcotest.(check bool) "rank <= 3" true (r.Kle.Aca.rank <= 3);
      for i = 0 to m - 1 do
        for j = 0 to n - 1 do
          let acc = ref 0.0 in
          for c = 0 to r.Kle.Aca.rank - 1 do
            acc :=
              !acc +. (Linalg.Mat.get r.Kle.Aca.u i c *. Linalg.Mat.get r.Kle.Aca.v j c)
          done;
          check_close ~tol:1e-8 (Printf.sprintf "entry (%d, %d)" i j) (entry i j) !acc
        done
      done

let test_hmatrix_apply_matches_exact () =
  (* the compressed apply agrees with the assembled matrix to the ACA
     tolerance (scaled by the operator norm) on every shipped isotropic
     kernel *)
  let mesh = Lazy.force mesh_fine in
  let n = Geometry.Mesh.size mesh in
  List.iter
    (fun kernel ->
      let c = Kle.Galerkin.assemble mesh kernel in
      match Kle.Operator.hmatrix_galerkin ~hier:hier_params mesh kernel with
      | Error msg -> Alcotest.fail ("hierarchical build stalled: " ^ msg)
      | Ok hm ->
          Alcotest.(check bool) "some far-field compression happened" true
            (hm.Kle.Hmatrix.stats.Kle.Hmatrix.far_blocks > 0);
          let op = Kle.Operator.of_hmatrix hm in
          let x = random_vec 23 n in
          let y_dense = Linalg.Mat.mul_vec c x in
          let y_h = Kle.Operator.apply op x in
          let scale =
            Array.fold_left (fun a v -> Float.max a (Float.abs v)) 1e-300 y_dense
          in
          Array.iteri
            (fun i v ->
              Alcotest.(check bool)
                (Printf.sprintf "%s row %d" (K.name kernel) i)
                true
                (Float.abs (v -. y_dense.(i)) /. scale <= 1e-6))
            y_h)
    [ gaussian; K.Exponential { c = 1.5 }; K.Matern { b = 2.0; s = 2.5 } ]

let test_hmatrix_build_jobs_independent () =
  (* repo invariant: the compressed operator is bit-identical for any
     worker count (fixed partition, per-block slots, sequential apply) *)
  let mesh = Lazy.force mesh_fine in
  let n = Geometry.Mesh.size mesh in
  let build jobs =
    match Kle.Operator.hmatrix_galerkin ~hier:hier_params ~jobs mesh gaussian with
    | Ok hm -> hm
    | Error msg -> Alcotest.fail ("build stalled: " ^ msg)
  in
  let h1 = build 1 and h4 = build 4 in
  let x = random_vec 5 n in
  Alcotest.(check (array (float 0.0)))
    "bit-identical across jobs"
    (Kle.Hmatrix.apply h1 x) (Kle.Hmatrix.apply h4 x)

let test_hierarchical_solve_matches_assembled () =
  (* property: hierarchical-mode eigenvalues match the assembled solve
     within the requested ACA tolerance budget, across kernel families and
     mesh sizes *)
  List.iter
    (fun kernel ->
      List.iter
        (fun divisions ->
          let mesh = Geometry.Mesh.uniform Geometry.Rect.unit_die ~divisions in
          let solver = Kle.Galerkin.Lanczos { count = 12 } in
          let a = Kle.Galerkin.solve ~mode:Kle.Galerkin.Assembled ~solver mesh kernel in
          let h =
            Kle.Galerkin.solve ~mode:Kle.Galerkin.Hierarchical ~hier:hier_params
              ~solver mesh kernel
          in
          Array.iteri
            (fun j v ->
              let rel = Float.abs (v -. h.Kle.Galerkin.eigenvalues.(j)) /. v in
              Alcotest.(check bool)
                (Printf.sprintf "%s div %d eigenvalue %d rel err %.2e <= 1e-6"
                   (K.name kernel) divisions j rel)
                true (rel <= 1e-6))
            a.Kle.Galerkin.eigenvalues)
        [ 8; 10; 12 ])
    [ gaussian; K.Exponential { c = 1.5 }; K.Matern { b = 2.0; s = 2.5 } ]

let test_hierarchical_fallback_on_aca_stall () =
  (* max_rank 1 at tol 1e-12 cannot converge on a genuine far-field block:
     the build must fail over to the table apply and say so *)
  let mesh = Lazy.force mesh_fine in
  let n = Geometry.Mesh.size mesh in
  let diag = Util.Diag.create () in
  let hier = { hier_params with Kle.Hmatrix.tol = 1e-12; max_rank = 1 } in
  let op =
    Kle.Operator.galerkin ~mode:Kle.Operator.Hierarchical ~hier ~diag mesh gaussian
  in
  Alcotest.(check bool) "fallback recorded" true
    (Util.Diag.count ~code:`Degraded_fallback diag > 0);
  (* the degraded operator is the table apply: still within its budget *)
  let c = Kle.Galerkin.assemble mesh gaussian in
  let x = random_vec 29 n in
  let y_dense = Linalg.Mat.mul_vec c x in
  Array.iteri
    (fun i v -> check_close ~tol:1e-7 (Printf.sprintf "row %d" i) y_dense.(i) v)
    (Kle.Operator.apply op x)

let test_operator_concurrent_applies_bit_identical () =
  (* two domains hammering one operator must see exactly the results of
     sequential applies: scratch panels are per-call, never shared *)
  let mesh = Lazy.force mesh_fine in
  let n = Geometry.Mesh.size mesh in
  let op = Kle.Operator.galerkin ~jobs:2 mesh gaussian in
  let xs = Array.init 2 (fun i -> random_vec (100 + i) n) in
  let seq = Array.map (Kle.Operator.apply op) xs in
  let domains =
    Array.map
      (fun x -> Domain.spawn (fun () -> Array.init 8 (fun _ -> Kle.Operator.apply op x)))
      xs
  in
  Array.iteri
    (fun i d ->
      Array.iter
        (fun y -> Alcotest.(check (array (float 0.0))) "bit-identical" seq.(i) y)
        (Domain.join d))
    domains

let test_sample_matrix_paper_literal_bit_identical () =
  (* the default (gathered-expansion) path and the paper-literal path draw
     the same gaussians and multiply them in the same order: bit-identical *)
  let _, _, sampler = Lazy.force sampler_fixture in
  let m1 = Kle.Sampler.sample_matrix sampler (Prng.Rng.create ~seed:4) ~n:64 in
  let m2 =
    Kle.Sampler.sample_matrix ~paper_literal:true sampler (Prng.Rng.create ~seed:4)
      ~n:64
  in
  Alcotest.(check bool) "bit-identical" true (Linalg.Mat.max_abs_diff m1 m2 = 0.0)

(* ---------- P1 (piecewise-linear) extension ---------- *)

let p1_fixture =
  lazy
    (let mesh = Geometry.Mesh.uniform Geometry.Rect.unit_die ~divisions:6 in
     (mesh, Kle.P1.solve ~count:12 mesh gaussian))

let test_p1_mass_matrix_tiles_area () =
  let mesh, _ = Lazy.force p1_fixture in
  let m = Kle.P1.mass_matrix mesh in
  (* sum of all entries = integral of (sum of hats)^2 = die area *)
  let acc = ref 0.0 in
  for i = 0 to Linalg.Mat.rows m - 1 do
    for j = 0 to Linalg.Mat.cols m - 1 do
      acc := !acc +. Linalg.Mat.get m i j
    done
  done;
  check_close ~tol:1e-9 "area" 4.0 !acc;
  Alcotest.(check bool) "symmetric" true (Linalg.Mat.is_symmetric m)

let test_p1_eigenvalues_close_to_p0 () =
  let mesh, p1 = Lazy.force p1_fixture in
  let p0 = Kle.Galerkin.solve ~solver:(Kle.Galerkin.Lanczos { count = 8 }) mesh gaussian in
  for i = 0 to 7 do
    let a = p1.Kle.P1.eigenvalues.(i) and b = p0.Kle.Galerkin.eigenvalues.(i) in
    Alcotest.(check bool)
      (Printf.sprintf "pair %d: p1 %.4f vs p0 %.4f" i a b)
      true
      (Float.abs (a -. b) /. b < 0.05)
  done

let test_p1_matches_analytic () =
  let c = 1.0 in
  let kernel = K.Separable_exp_l1 { c } in
  let mesh = Geometry.Mesh.uniform Geometry.Rect.unit_die ~divisions:8 in
  let sol = Kle.P1.solve ~count:6 mesh kernel in
  let exact = Kernels.Analytic_kle.exp_2d ~c ~rect:Geometry.Rect.unit_die ~count:6 in
  for i = 0 to 5 do
    let e = exact.(i).Kernels.Analytic_kle.lambda in
    Alcotest.(check bool)
      (Printf.sprintf "pair %d" i)
      true
      (Float.abs (sol.Kle.P1.eigenvalues.(i) -. e) /. e < 0.02)
  done

let test_p1_eigenfunctions_l2_orthonormal () =
  let mesh, p1 = Lazy.force p1_fixture in
  (* d^T M d' = delta via the mass matrix *)
  let m = Kle.P1.mass_matrix mesh in
  let d = p1.Kle.P1.vertex_coefficients in
  for a = 0 to 4 do
    for b = a to 4 do
      let da = Linalg.Mat.col d a and db = Linalg.Mat.col d b in
      let mdb = Linalg.Mat.mul_vec m db in
      let inner = Linalg.Vec.dot da mdb in
      check_close ~tol:1e-8
        (Printf.sprintf "inner (%d, %d)" a b)
        (if a = b then 1.0 else 0.0)
        inner
    done
  done

let test_p1_continuous_across_edges () =
  let _, p1 = Lazy.force p1_fixture in
  let ev = Kle.P1.evaluator p1 in
  (* evaluate at points straddling an interior vertical mesh line x = 0 *)
  let eps = 1e-9 in
  List.iter
    (fun y ->
      let left = Kle.P1.eval_eigenfunction ev 0 (P.make (-.eps) y) in
      let right = Kle.P1.eval_eigenfunction ev 0 (P.make eps y) in
      check_close ~tol:1e-6 "continuous" left right)
    [ -0.63; -0.21; 0.11; 0.47 ]

let test_p1_grid_reconstruction_beats_p0 () =
  let mesh, p1 = Lazy.force p1_fixture in
  let ev = Kle.P1.evaluator p1 in
  let p0 = Kle.Galerkin.solve ~solver:(Kle.Galerkin.Lanczos { count = 12 }) mesh gaussian in
  let m0 = Kle.Model.create ~r:12 p0 in
  let e0 = Kle.Model.reconstruction_error_grid ~grid:21 m0 in
  let e1 = Kle.P1.reconstruction_error_grid ~grid:21 ev ~r:12 in
  Alcotest.(check bool)
    (Printf.sprintf "P1 %.4f < P0 %.4f" e1 e0)
    true (e1 < e0)

let test_p1_dense_path () =
  (* count >= vertex count switches to the dense solver *)
  let mesh = Geometry.Mesh.uniform Geometry.Rect.unit_die ~divisions:6 in
  let sol = Kle.P1.solve mesh gaussian in
  let nv = Array.length mesh.Geometry.Mesh.points in
  Alcotest.(check int) "all pairs" nv (Array.length sol.Kle.P1.eigenvalues);
  (* the full GEP spectrum approximates the continuous trace
     integral K(x,x) = 4, up to the mid-edge quadrature error of the mesh
     (measured: 3.77 at divisions=3, 3.98 at divisions=6) *)
  check_close ~tol:0.05 "trace" 4.0 (Util.Arrayx.sum sol.Kle.P1.eigenvalues)

let test_p1_index_out_of_range () =
  let _, p1 = Lazy.force p1_fixture in
  let ev = Kle.P1.evaluator p1 in
  Alcotest.(check bool) "raises" true
    (match Kle.P1.eval_eigenfunction ev 500 (P.make 0.0 0.0) with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ---------- qcheck ---------- *)

let prop_choose_r_bound_holds =
  (* for random decaying spectra, the selection rule's bound truly holds *)
  let gen =
    QCheck.Gen.(
      let* m = int_range 5 30 in
      let* decay = float_range 1.2 3.0 in
      let* seed = int_range 0 1000 in
      return (m, decay, seed))
  in
  let arb = QCheck.make gen ~print:(fun (m, d, s) -> Printf.sprintf "(m=%d, decay=%f, seed=%d)" m d s) in
  QCheck.Test.make ~name:"choose_r bound holds on synthetic spectra" ~count:100 arb
    (fun (m, decay, _) ->
      let vals = Array.init m (fun i -> decay ** float_of_int (-i)) in
      let n_total = m + 50 in
      let r = Kle.Model.choose_r ~tolerance:0.01 ~n_total vals in
      r = m
      ||
      let tail = ref (vals.(m - 1) *. float_of_int (n_total - m)) in
      for i = r to m - 1 do
        tail := !tail +. vals.(i)
      done;
      let head = ref 0.0 in
      for i = 0 to r - 1 do
        head := !head +. vals.(i)
      done;
      !tail <= 0.01 *. !head +. 1e-12)

let () =
  Alcotest.run "kle"
    [
      ( "galerkin",
        [
          Alcotest.test_case "assemble symmetric" `Quick test_assemble_symmetric;
          Alcotest.test_case "trace equals die area" `Quick test_trace_equals_area;
          Alcotest.test_case "eigenvalues nonneg descending" `Quick test_eigenvalues_nonnegative_descending;
          Alcotest.test_case "eigenvalue sum = trace" `Quick test_eigenvalue_sum_equals_trace;
          Alcotest.test_case "eigenfunctions L2-orthonormal" `Quick test_eigenfunctions_l2_orthonormal;
          Alcotest.test_case "lanczos matches dense" `Quick test_lanczos_solver_matches_dense;
          Alcotest.test_case "matches analytic separable KLE" `Slow test_galerkin_vs_analytic_separable;
          Alcotest.test_case "midedge quadrature more accurate" `Quick test_midedge_quadrature_more_accurate;
          Alcotest.test_case "eigenvalue convergence in h" `Quick test_eigenvalue_convergence_with_mesh;
          Alcotest.test_case "indefinite kernel rejected" `Quick test_indefinite_kernel_rejected;
          Alcotest.test_case "NaN kernel caught at assembly" `Quick
            test_nan_kernel_caught_at_assembly;
          Alcotest.test_case "lanczos no-convergence falls back to dense" `Quick
            test_lanczos_no_convergence_falls_back_to_dense;
        ] );
      ( "model",
        [
          Alcotest.test_case "out-of-domain point clamps" `Quick
            test_out_of_domain_point_clamps;
          Alcotest.test_case "out-of-domain sampler location clamps" `Quick
            test_sampler_out_of_domain_location_clamps;
          Alcotest.test_case "choose_r rule" `Quick test_choose_r_rule;
          Alcotest.test_case "choose_r flat spectrum" `Quick test_choose_r_flat_spectrum;
          Alcotest.test_case "choose_r monotone in tolerance" `Quick test_choose_r_monotone_in_tolerance;
          Alcotest.test_case "create bounds" `Quick test_model_create_bounds;
          Alcotest.test_case "piecewise-constant eigenfunctions" `Quick test_eigenfunction_piecewise_constant;
          Alcotest.test_case "variance at points" `Quick test_variance_at_close_to_one;
          Alcotest.test_case "captured variance monotone" `Quick test_captured_variance_increases_with_r;
          Alcotest.test_case "reconstruction error decreases in r" `Quick test_reconstruction_error_decreases_with_r;
          Alcotest.test_case "grid reconstruction bounded" `Quick test_reconstruction_error_grid_bounded;
          Alcotest.test_case "pairwise reconstruction bounded" `Quick test_reconstruction_pairwise_bounded;
          Alcotest.test_case "d_lambda shape and scale" `Quick test_d_lambda_shape_and_scale;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "dimensions" `Quick test_sampler_dims;
          Alcotest.test_case "locations resolve to containing triangles" `Quick test_sampler_triangles_contain_locations;
          Alcotest.test_case "deterministic" `Quick test_sampler_deterministic;
          Alcotest.test_case "per-location variance" `Quick test_sampler_moments;
          Alcotest.test_case "covariance matches kernel" `Quick test_sampler_covariance_matches_kernel;
          Alcotest.test_case "matrix variants agree" `Quick test_sample_matrix_variants_agree_statistically;
          Alcotest.test_case "sample_with_xi consistent" `Quick test_sample_with_xi_consistent;
          Alcotest.test_case "external xi equivalence" `Quick test_sample_matrix_with_gaussian_equivalence;
          Alcotest.test_case "external xi width check" `Quick test_sample_matrix_with_width_check;
          Alcotest.test_case "paper-literal path bit-identical" `Quick
            test_sample_matrix_paper_literal_bit_identical;
        ] );
      ( "operator",
        [
          Alcotest.test_case "exact apply matches assembled (all kernels)" `Quick
            test_operator_exact_apply_matches_assembled;
          Alcotest.test_case "table apply within error budget" `Quick
            test_operator_table_apply_close_to_assembled;
          Alcotest.test_case "apply independent of jobs" `Quick
            test_operator_apply_jobs_independent;
          Alcotest.test_case "mid-edge quadrature" `Quick test_operator_midedge_quadrature;
          Alcotest.test_case "matrix-free solve matches assembled" `Quick
            test_matrix_free_solve_matches_assembled;
          Alcotest.test_case "matrix-free fallback chain" `Quick
            test_matrix_free_fallback_chain;
          Alcotest.test_case "matrix-free + dense solver rejected" `Quick
            test_matrix_free_dense_solver_rejected;
          Alcotest.test_case "concurrent applies bit-identical" `Quick
            test_operator_concurrent_applies_bit_identical;
        ] );
      ( "hierarchical",
        [
          Alcotest.test_case "cluster tree invariants" `Quick test_cluster_tree_invariants;
          Alcotest.test_case "ACA recovers a low-rank matrix" `Quick
            test_aca_recovers_low_rank;
          Alcotest.test_case "H-matrix apply matches assembled" `Quick
            test_hmatrix_apply_matches_exact;
          Alcotest.test_case "build independent of jobs" `Quick
            test_hmatrix_build_jobs_independent;
          Alcotest.test_case "hierarchical solve matches assembled" `Quick
            test_hierarchical_solve_matches_assembled;
          Alcotest.test_case "ACA stall falls back to table" `Quick
            test_hierarchical_fallback_on_aca_stall;
        ] );
      ( "p1",
        [
          Alcotest.test_case "mass matrix tiles area" `Quick test_p1_mass_matrix_tiles_area;
          Alcotest.test_case "eigenvalues close to P0" `Quick test_p1_eigenvalues_close_to_p0;
          Alcotest.test_case "matches analytic KLE" `Quick test_p1_matches_analytic;
          Alcotest.test_case "M-orthonormal eigenvectors" `Quick test_p1_eigenfunctions_l2_orthonormal;
          Alcotest.test_case "continuous across edges" `Quick test_p1_continuous_across_edges;
          Alcotest.test_case "grid reconstruction beats P0" `Quick test_p1_grid_reconstruction_beats_p0;
          Alcotest.test_case "dense solver path" `Quick test_p1_dense_path;
          Alcotest.test_case "index out of range" `Quick test_p1_index_out_of_range;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_choose_r_bound_holds ]);
    ]
