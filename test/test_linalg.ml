module Mat = Linalg.Mat
module Vec = Linalg.Vec

let check_close ?(tol = 1e-10) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

(* deterministic pseudo-random matrix builders *)
let lcg_stream seed =
  let state = ref seed in
  fun () ->
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    (float_of_int !state /. 1073741824.0) -. 0.5

let random_mat seed rows cols =
  let next = lcg_stream seed in
  Mat.init rows cols (fun _ _ -> next ())

let random_spd seed n =
  let b = random_mat seed n n in
  let a = Mat.mul b (Mat.transpose b) in
  (* add n * I to be safely positive definite *)
  Mat.add a (Mat.scale (0.1 *. float_of_int n) (Mat.identity n))

let random_sym seed n =
  let b = random_mat seed n n in
  Mat.scale 0.5 (Mat.add b (Mat.transpose b))

(* ---------- Vec ---------- *)

let test_vec_dot () =
  check_close "dot" 32.0 (Vec.dot [| 1.0; 2.0; 3.0 |] [| 4.0; 5.0; 6.0 |])

let test_vec_dot_mismatch () =
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Vec.dot: length mismatch (2 vs 3)") (fun () ->
      ignore (Vec.dot [| 1.0; 2.0 |] [| 1.0; 2.0; 3.0 |]))

let test_vec_norms () =
  check_close "norm2" 5.0 (Vec.norm2 [| 3.0; 4.0 |]);
  check_close "norm_inf" 4.0 (Vec.norm_inf [| 3.0; -4.0 |])

let test_vec_axpy () =
  let y = [| 1.0; 1.0 |] in
  Vec.axpy 2.0 [| 1.0; 2.0 |] y;
  Alcotest.(check (array (float 1e-12))) "axpy" [| 3.0; 5.0 |] y

let test_vec_normalize () =
  let v = Vec.normalize [| 3.0; 4.0 |] in
  check_close "unit norm" 1.0 (Vec.norm2 v);
  Alcotest.check_raises "zero vector" (Invalid_argument "Vec.normalize: zero vector")
    (fun () -> ignore (Vec.normalize [| 0.0; 0.0 |]))

let test_vec_add_sub_scale () =
  Alcotest.(check (array (float 1e-12))) "add" [| 3.0; 5.0 |]
    (Vec.add [| 1.0; 2.0 |] [| 2.0; 3.0 |]);
  Alcotest.(check (array (float 1e-12))) "sub" [| -1.0; -1.0 |]
    (Vec.sub [| 1.0; 2.0 |] [| 2.0; 3.0 |]);
  Alcotest.(check (array (float 1e-12))) "scale" [| 2.0; 4.0 |]
    (Vec.scale 2.0 [| 1.0; 2.0 |])

(* ---------- Mat ---------- *)

let test_mat_get_set () =
  let m = Mat.create 2 3 in
  Mat.set m 1 2 5.0;
  check_close "set/get" 5.0 (Mat.get m 1 2);
  Alcotest.check_raises "bounds"
    (Invalid_argument "Mat: index (2, 0) out of bounds for 2x3") (fun () ->
      ignore (Mat.get m 2 0))

let test_mat_identity_mul () =
  let a = random_mat 7 5 5 in
  let i5 = Mat.identity 5 in
  check_close "I*A = A" 0.0 (Mat.max_abs_diff a (Mat.mul i5 a));
  check_close "A*I = A" 0.0 (Mat.max_abs_diff a (Mat.mul a i5))

let test_mat_mul_known () =
  let a = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Mat.of_arrays [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let c = Mat.mul a b in
  check_close "c00" 19.0 (Mat.get c 0 0);
  check_close "c01" 22.0 (Mat.get c 0 1);
  check_close "c10" 43.0 (Mat.get c 1 0);
  check_close "c11" 50.0 (Mat.get c 1 1)

let test_mat_mul_associative () =
  let a = random_mat 1 4 6 and b = random_mat 2 6 3 and c = random_mat 3 3 5 in
  let left = Mat.mul (Mat.mul a b) c in
  let right = Mat.mul a (Mat.mul b c) in
  Alcotest.(check bool) "assoc" true (Mat.max_abs_diff left right < 1e-12)

let test_mat_transpose_involution () =
  let a = random_mat 4 3 7 in
  check_close "transpose twice" 0.0 (Mat.max_abs_diff a (Mat.transpose (Mat.transpose a)))

let test_mat_mul_vec_consistency () =
  let a = random_mat 11 4 6 in
  let x = Array.init 6 (fun i -> float_of_int (i + 1)) in
  let y1 = Mat.mul_vec a x in
  let xm = Mat.init 6 1 (fun i _ -> x.(i)) in
  let y2 = Mat.mul a xm in
  Array.iteri (fun i v -> check_close "mul_vec vs mul" (Mat.get y2 i 0) v) y1

let test_mat_mul_vec_transposed () =
  let a = random_mat 13 4 6 in
  let x = Array.init 4 (fun i -> float_of_int i -. 1.5) in
  let y1 = Mat.mul_vec_transposed a x in
  let y2 = Mat.mul_vec (Mat.transpose a) x in
  Array.iteri (fun i v -> check_close "matches explicit transpose" y2.(i) v) y1

let test_mat_trace () =
  check_close "trace" 5.0 (Mat.trace (Mat.of_arrays [| [| 1.0; 9.0 |]; [| 0.0; 4.0 |] |]))

let test_mat_of_arrays_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Mat.of_arrays: ragged rows")
    (fun () -> ignore (Mat.of_arrays [| [| 1.0 |]; [| 1.0; 2.0 |] |]))

let test_mat_rows_cols_roundtrip () =
  let a = random_mat 3 3 4 in
  let arrays = Mat.to_arrays a in
  check_close "roundtrip" 0.0 (Mat.max_abs_diff a (Mat.of_arrays arrays))

let test_mat_is_symmetric () =
  Alcotest.(check bool) "sym" true (Mat.is_symmetric (random_spd 5 6));
  Alcotest.(check bool) "not sym" false (Mat.is_symmetric (random_mat 5 6 6))

let test_mat_row_col () =
  let a = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  Alcotest.(check (array (float 0.0))) "row" [| 3.0; 4.0 |] (Mat.row a 1);
  Alcotest.(check (array (float 0.0))) "col" [| 2.0; 4.0 |] (Mat.col a 1)

let test_mat_mul_nt_matches_transpose () =
  (* odd shapes exercise the partial trailing k-block *)
  let a = random_mat 17 13 19 and b = random_mat 23 11 19 in
  let c1 = Mat.mul_nt a b in
  let c2 = Mat.mul a (Mat.transpose b) in
  Alcotest.(check bool) "bit-identical" true (Mat.max_abs_diff c1 c2 = 0.0)

let test_mat_mul_nt_blocked_and_parallel () =
  (* k = 600 spans multiple 256-wide blocks, and the flop count crosses the
     parallel threshold; the result must still match bit-for-bit *)
  let a = random_mat 29 48 600 and b = random_mat 31 40 600 in
  let c1 = Mat.mul_nt a b in
  let c2 = Mat.mul a (Mat.transpose b) in
  Alcotest.(check bool) "bit-identical" true (Mat.max_abs_diff c1 c2 = 0.0)

let test_mat_mul_nt_with_zeros () =
  (* the zero-skip in both kernels must fire on the same entries *)
  let next = lcg_stream 41 in
  let a = Mat.init 9 33 (fun _ _ -> if next () < 0.0 then 0.0 else next ()) in
  let b = random_mat 43 7 33 in
  let c1 = Mat.mul_nt a b in
  let c2 = Mat.mul a (Mat.transpose b) in
  Alcotest.(check bool) "bit-identical" true (Mat.max_abs_diff c1 c2 = 0.0)

let test_mat_mul_nt_mismatch () =
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Mat.mul_nt: inner dimension mismatch") (fun () ->
      ignore (Mat.mul_nt (random_mat 1 2 3) (random_mat 2 2 4)))

(* ---------- Cholesky ---------- *)

let test_cholesky_reconstructs () =
  let a = random_spd 21 30 in
  let l = Linalg.Cholesky.factor_lower a in
  let rec_a = Mat.mul l (Mat.transpose l) in
  Alcotest.(check bool) "LLt = A" true (Mat.max_abs_diff a rec_a < 1e-9)

let test_cholesky_lower_triangular () =
  let a = random_spd 22 10 in
  let l = Linalg.Cholesky.factor_lower a in
  let ok = ref true in
  for i = 0 to 9 do
    for j = i + 1 to 9 do
      if Mat.get l i j <> 0.0 then ok := false
    done
  done;
  Alcotest.(check bool) "strictly lower" true !ok

let test_cholesky_upper_matches () =
  let a = random_spd 23 8 in
  let u = Linalg.Cholesky.factor_upper a in
  let rec_a = Mat.mul (Mat.transpose u) u in
  Alcotest.(check bool) "UtU = A" true (Mat.max_abs_diff a rec_a < 1e-9)

let test_cholesky_indefinite_raises () =
  let a = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 1.0 |] |] in
  (* eigenvalues 3, -1 *)
  Alcotest.(check bool) "raises" true
    (match Linalg.Cholesky.factor_lower a with
    | _ -> false
    | exception Linalg.Cholesky.Not_positive_definite _ -> true)

let test_cholesky_jitter_on_semidefinite () =
  (* rank-1 PSD matrix: ones *)
  let a = Mat.init 6 6 (fun _ _ -> 1.0) in
  let l, jitter = Linalg.Cholesky.factor_jittered a in
  Alcotest.(check bool) "jitter applied" true (jitter > 0.0);
  Alcotest.(check bool) "factor close" true
    (Mat.max_abs_diff a (Mat.mul l (Mat.transpose l)) < 1e-5)

let test_cholesky_jittered_rank_deficient () =
  (* rank-2 PSD 6x6: jitter must rescue the zero pivots of the null space *)
  let u = [| 1.0; 2.0; 0.0; -1.0; 0.5; 1.5 |] in
  let v = [| 0.0; 1.0; -1.0; 2.0; 1.0; 0.0 |] in
  let a = Mat.init 6 6 (fun i j -> (u.(i) *. u.(j)) +. (v.(i) *. v.(j))) in
  let l, jitter = Linalg.Cholesky.factor_jittered a in
  Alcotest.(check bool) "jitter applied" true (jitter > 0.0);
  Alcotest.(check bool) "factor close" true
    (Mat.max_abs_diff a (Mat.mul l (Mat.transpose l)) < 1e-4)

let test_cholesky_jittered_indefinite_raises () =
  (* eigenvalues 3, -1: no diagonal jitter in the escalation range fixes it *)
  let a = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 1.0 |] |] in
  Alcotest.(check bool) "raises after escalation" true
    (match Linalg.Cholesky.factor_jittered a with
    | _ -> false
    | exception Linalg.Cholesky.Not_positive_definite _ -> true)

let test_cholesky_solve () =
  let a = random_spd 29 25 in
  let x0 = Array.init 25 (fun i -> sin (float_of_int i)) in
  let b = Mat.mul_vec a x0 in
  let l = Linalg.Cholesky.factor_lower a in
  let x = Linalg.Cholesky.solve l b in
  Alcotest.(check bool) "solve" true (Vec.dist_inf x x0 < 1e-8)

let test_cholesky_log_det () =
  (* diag(4, 9): det = 36 *)
  let a = Mat.of_arrays [| [| 4.0; 0.0 |]; [| 0.0; 9.0 |] |] in
  let l = Linalg.Cholesky.factor_lower a in
  check_close ~tol:1e-10 "log det" (log 36.0) (Linalg.Cholesky.log_det l)

(* ---------- LU ---------- *)

let test_lu_solve () =
  let a = random_mat 31 20 20 in
  let a = Mat.add a (Mat.scale 5.0 (Mat.identity 20)) in
  let x0 = Array.init 20 (fun i -> cos (float_of_int i)) in
  let b = Mat.mul_vec a x0 in
  let x = Linalg.Lu.solve_dense a b in
  Alcotest.(check bool) "solve" true (Vec.dist_inf x x0 < 1e-8)

let test_lu_det_known () =
  let a = Mat.of_arrays [| [| 2.0; 0.0 |]; [| 1.0; 3.0 |] |] in
  check_close ~tol:1e-12 "det" 6.0 (Linalg.Lu.det (Linalg.Lu.factor a))

let test_lu_det_permutation_sign () =
  (* swapped identity has det -1 *)
  let a = Mat.of_arrays [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  check_close ~tol:1e-12 "det sign" (-1.0) (Linalg.Lu.det (Linalg.Lu.factor a))

let test_lu_singular () =
  let a = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  Alcotest.(check bool) "singular raises" true
    (match Linalg.Lu.factor a with
    | _ -> false
    | exception Linalg.Lu.Singular _ -> true)

let test_lu_inverse () =
  let a = random_mat 37 6 6 in
  let a = Mat.add a (Mat.scale 4.0 (Mat.identity 6)) in
  let inv = Linalg.Lu.inverse (Linalg.Lu.factor a) in
  Alcotest.(check bool) "A * A^-1 = I" true
    (Mat.max_abs_diff (Mat.mul a inv) (Mat.identity 6) < 1e-9)

(* ---------- Sym_eig ---------- *)

let test_eig_diagonal () =
  let a = Mat.of_arrays [| [| 3.0; 0.0 |]; [| 0.0; 1.0 |] |] in
  let vals, _ = Linalg.Sym_eig.eig a in
  check_close "l0" 3.0 vals.(0);
  check_close "l1" 1.0 vals.(1)

let test_eig_known_2x2 () =
  (* [[2,1],[1,2]] has eigenvalues 3 and 1 *)
  let a = Mat.of_arrays [| [| 2.0; 1.0 |]; [| 1.0; 2.0 |] |] in
  let vals, q = Linalg.Sym_eig.eig a in
  check_close "l0" 3.0 vals.(0);
  check_close "l1" 1.0 vals.(1);
  (* eigenvector for 3 is (1,1)/sqrt 2 up to sign *)
  let v0 = Mat.col q 0 in
  check_close ~tol:1e-10 "v0 components equal" (Float.abs v0.(0)) (Float.abs v0.(1))

let eig_residual a =
  let n = Mat.rows a in
  let vals, q = Linalg.Sym_eig.eig a in
  let err = ref 0.0 in
  for j = 0 to n - 1 do
    let v = Mat.col q j in
    let av = Mat.mul_vec a v in
    let lv = Vec.scale vals.(j) v in
    err := Float.max !err (Vec.dist_inf av lv)
  done;
  !err

let test_eig_residual_random () =
  Alcotest.(check bool) "residual small" true (eig_residual (random_sym 41 40) < 1e-10)

let test_eig_orthonormal_vectors () =
  let a = random_sym 43 25 in
  let _, q = Linalg.Sym_eig.eig a in
  let qtq = Mat.mul (Mat.transpose q) q in
  Alcotest.(check bool) "QtQ = I" true (Mat.max_abs_diff qtq (Mat.identity 25) < 1e-10)

let test_eig_trace_identity () =
  let a = random_sym 47 30 in
  let vals = Linalg.Sym_eig.eig_values a in
  check_close ~tol:1e-9 "sum eig = trace" (Mat.trace a) (Util.Arrayx.sum vals)

let test_eig_values_sorted () =
  let vals = Linalg.Sym_eig.eig_values (random_sym 53 30) in
  let sorted = ref true in
  for i = 1 to Array.length vals - 1 do
    if vals.(i) > vals.(i - 1) +. 1e-12 then sorted := false
  done;
  Alcotest.(check bool) "descending" true !sorted

let test_eig_matches_jacobi () =
  let a = random_sym 59 20 in
  let v1 = Linalg.Sym_eig.eig_values a in
  let v2, _ = Linalg.Jacobi.eig a in
  Array.iteri (fun i v -> check_close ~tol:1e-9 "ql vs jacobi" v2.(i) v) v1

let test_eig_degenerate_eigenvalues () =
  (* identity: all eigenvalues 1, vectors orthonormal *)
  let vals, q = Linalg.Sym_eig.eig (Mat.identity 8) in
  Array.iter (fun v -> check_close "unit eig" 1.0 v) vals;
  Alcotest.(check bool) "orthonormal" true
    (Mat.max_abs_diff (Mat.mul (Mat.transpose q) q) (Mat.identity 8) < 1e-12)

let test_eig_1x1 () =
  let vals, q = Linalg.Sym_eig.eig (Mat.of_arrays [| [| 7.0 |] |]) in
  check_close "eigenvalue" 7.0 vals.(0);
  check_close "vector" 1.0 (Float.abs (Mat.get q 0 0))

let test_eig_numerically_low_rank () =
  (* regression: Gram matrices of smooth kernels are numerically low-rank
     (trailing eigenvalues at rounding-noise level); the QL deflation test
     must use the global matrix norm or it spins forever on the noise block *)
  let pts =
    Array.init 20 (fun i ->
        let t = float_of_int i /. 19.0 in
        (t, Float.rem (t *. 7.3) 1.0))
  in
  let gauss (x1, y1) (x2, y2) =
    let d2 = ((x1 -. x2) ** 2.0) +. ((y1 -. y2) ** 2.0) in
    exp (-8.0 *. d2)
  in
  (* Kronecker-lift to a bigger, very ill-conditioned matrix *)
  let n = 20 in
  let g = Mat.init n n (fun i j -> gauss pts.(i) pts.(j)) in
  let big = Mat.init (n * n) (n * n) (fun i j ->
      Mat.get g (i / n) (j / n) *. Mat.get g (i mod n) (j mod n))
  in
  let vals = Linalg.Sym_eig.eig_values big in
  Alcotest.(check bool) "converged with positive top eigenvalue" true (vals.(0) > 0.0);
  (* trace identity still holds *)
  check_close ~tol:1e-6 "trace" (Mat.trace big) (Util.Arrayx.sum vals)

(* ---------- Jacobi ---------- *)

let test_jacobi_residual () =
  let a = random_sym 61 15 in
  let vals, q = Linalg.Jacobi.eig a in
  let err = ref 0.0 in
  for j = 0 to 14 do
    let v = Mat.col q j in
    let av = Mat.mul_vec a v in
    err := Float.max !err (Vec.dist_inf av (Vec.scale vals.(j) v))
  done;
  Alcotest.(check bool) "residual" true (!err < 1e-9)

(* ---------- Lanczos ---------- *)

let test_lanczos_matches_dense () =
  let a = random_spd 67 60 in
  let dense = Linalg.Sym_eig.eig_values a in
  let r = Linalg.Lanczos.top_k ~matvec:(fun x -> Mat.mul_vec a x) ~n:60 ~k:12 () in
  Array.iteri
    (fun i v -> check_close ~tol:1e-8 "lanczos vs dense" dense.(i) v)
    r.Linalg.Lanczos.eigenvalues

let test_lanczos_eigenvectors () =
  let a = random_spd 71 50 in
  let r = Linalg.Lanczos.top_k ~matvec:(fun x -> Mat.mul_vec a x) ~n:50 ~k:5 () in
  Array.iteri
    (fun i v ->
      let av = Mat.mul_vec a v in
      let lv = Vec.scale r.Linalg.Lanczos.eigenvalues.(i) v in
      Alcotest.(check bool) "residual" true (Vec.dist_inf av lv < 1e-7))
    r.Linalg.Lanczos.eigenvectors

let test_lanczos_orthonormal_ritz () =
  let a = random_spd 73 40 in
  let r = Linalg.Lanczos.top_k ~matvec:(fun x -> Mat.mul_vec a x) ~n:40 ~k:6 () in
  let vs = r.Linalg.Lanczos.eigenvectors in
  for i = 0 to 5 do
    check_close ~tol:1e-8 "unit" 1.0 (Vec.norm2 vs.(i));
    for j = i + 1 to 5 do
      check_close ~tol:1e-8 "orthogonal" 0.0 (Vec.dot vs.(i) vs.(j))
    done
  done

let test_lanczos_full_dimension () =
  (* k = n: must still work (degenerates to a full decomposition) *)
  let a = random_spd 79 12 in
  let dense = Linalg.Sym_eig.eig_values a in
  let r = Linalg.Lanczos.top_k ~matvec:(fun x -> Mat.mul_vec a x) ~n:12 ~k:12 () in
  Array.iteri
    (fun i v -> check_close ~tol:1e-7 "all pairs" dense.(i) v)
    r.Linalg.Lanczos.eigenvalues

let test_lanczos_invalid_k () =
  Alcotest.check_raises "k=0" (Invalid_argument "Lanczos.top_k: need 0 < k <= n")
    (fun () ->
      ignore (Linalg.Lanczos.top_k ~matvec:(fun x -> x) ~n:5 ~k:0 ()))

let test_lanczos_deterministic () =
  let a = random_spd 83 30 in
  let run () =
    (Linalg.Lanczos.top_k ~matvec:(fun x -> Mat.mul_vec a x) ~n:30 ~k:4 ())
      .Linalg.Lanczos.eigenvalues
  in
  let v1 = run () and v2 = run () in
  Array.iteri (fun i v -> check_close ~tol:0.0 "deterministic" v2.(i) v) v1

(* ---------- Sparse + CG ---------- *)

let laplacian_1d n =
  (* tridiagonal SPD: 2 on diagonal, -1 off (Dirichlet chain) *)
  let triplets = ref [] in
  for i = 0 to n - 1 do
    triplets := (i, i, 2.0) :: !triplets;
    if i + 1 < n then triplets := (i, i + 1, -1.0) :: (i + 1, i, -1.0) :: !triplets
  done;
  Linalg.Sparse.of_triplets ~n !triplets

let test_sparse_structure () =
  let a = laplacian_1d 5 in
  Alcotest.(check int) "dim" 5 (Linalg.Sparse.dim a);
  Alcotest.(check int) "nnz" 13 (Linalg.Sparse.nnz a);
  Alcotest.(check bool) "symmetric" true (Linalg.Sparse.is_symmetric a);
  Alcotest.(check (array (float 1e-12))) "diag" [| 2.0; 2.0; 2.0; 2.0; 2.0 |]
    (Linalg.Sparse.diagonal a)

let test_sparse_duplicate_triplets_sum () =
  let a = Linalg.Sparse.of_triplets ~n:2 [ (0, 0, 1.0); (0, 0, 2.5); (1, 1, 1.0) ] in
  check_close "summed" 3.5 (Mat.get (Linalg.Sparse.to_dense a) 0 0)

let test_sparse_matvec_matches_dense () =
  let a = laplacian_1d 30 in
  let dense = Linalg.Sparse.to_dense a in
  let x = Array.init 30 (fun i -> sin (float_of_int i)) in
  let y1 = Linalg.Sparse.mul_vec a x in
  let y2 = Mat.mul_vec dense x in
  Alcotest.(check bool) "same" true (Vec.dist_inf y1 y2 < 1e-13)

let test_sparse_bad_index () =
  Alcotest.(check bool) "raises" true
    (match Linalg.Sparse.of_triplets ~n:3 [ (0, 5, 1.0) ] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_cg_solves_laplacian () =
  let n = 100 in
  let a = laplacian_1d n in
  let x0 = Array.init n (fun i -> cos (0.3 *. float_of_int i)) in
  let b = Linalg.Sparse.mul_vec a x0 in
  let x, stats = Linalg.Cg.solve a b in
  Alcotest.(check bool) "solution" true (Vec.dist_inf x x0 < 1e-7);
  Alcotest.(check bool) "iterations bounded" true (stats.Linalg.Cg.iterations <= 4 * n)

let test_cg_matches_cholesky () =
  let a = laplacian_1d 40 in
  let b = Array.init 40 (fun i -> float_of_int (i mod 7) -. 3.0) in
  let x_cg, _ = Linalg.Cg.solve a b in
  let l = Linalg.Cholesky.factor_lower (Linalg.Sparse.to_dense a) in
  let x_ch = Linalg.Cholesky.solve l b in
  Alcotest.(check bool) "agree" true (Vec.dist_inf x_cg x_ch < 1e-7)

let test_cg_warm_start () =
  let a = laplacian_1d 50 in
  let x_true = Array.init 50 (fun i -> float_of_int i /. 50.0) in
  let b = Linalg.Sparse.mul_vec a x_true in
  let _, cold = Linalg.Cg.solve a b in
  let near = Array.map (fun v -> v +. 1e-6) x_true in
  let _, warm = Linalg.Cg.solve ~x0:near a b in
  Alcotest.(check bool)
    (Printf.sprintf "warm %d <= cold %d iterations" warm.Linalg.Cg.iterations
       cold.Linalg.Cg.iterations)
    true
    (warm.Linalg.Cg.iterations <= cold.Linalg.Cg.iterations)

let test_cg_budget_exhaustion () =
  let a = laplacian_1d 50 in
  let b = Array.make 50 1.0 in
  Alcotest.(check bool) "raises" true
    (match Linalg.Cg.solve ~max_iter:2 a b with
    | _ -> false
    | exception Linalg.Cg.No_convergence _ -> true)

(* ---------- qcheck properties ---------- *)

let small_sym_gen =
  QCheck.Gen.(
    let* n = int_range 2 8 in
    let* seed = int_range 1 10000 in
    return (n, seed))

let arb_small_sym = QCheck.make small_sym_gen ~print:(fun (n, s) -> Printf.sprintf "(n=%d, seed=%d)" n s)

let prop_eig_trace =
  QCheck.Test.make ~name:"eigenvalue sum equals trace" ~count:50 arb_small_sym
    (fun (n, seed) ->
      let a = random_sym seed n in
      let vals = Linalg.Sym_eig.eig_values a in
      Float.abs (Util.Arrayx.sum vals -. Mat.trace a) < 1e-8)

let prop_cholesky_roundtrip =
  QCheck.Test.make ~name:"cholesky reconstructs SPD matrices" ~count:50 arb_small_sym
    (fun (n, seed) ->
      let a = random_spd seed n in
      let l = Linalg.Cholesky.factor_lower a in
      Mat.max_abs_diff a (Mat.mul l (Mat.transpose l)) < 1e-8)

let prop_lu_solve =
  QCheck.Test.make ~name:"lu solves diagonally dominant systems" ~count:50 arb_small_sym
    (fun (n, seed) ->
      let a = Mat.add (random_mat seed n n) (Mat.scale (float_of_int n) (Mat.identity n)) in
      let x0 = Array.init n (fun i -> float_of_int (i - 1)) in
      let b = Mat.mul_vec a x0 in
      Vec.dist_inf (Linalg.Lu.solve_dense a b) x0 < 1e-8)

let prop_eig_psd_nonnegative =
  QCheck.Test.make ~name:"SPD matrices have positive eigenvalues" ~count:50 arb_small_sym
    (fun (n, seed) ->
      let vals = Linalg.Sym_eig.eig_values (random_spd seed n) in
      Array.for_all (fun v -> v > 0.0) vals)

let () =
  Alcotest.run "linalg"
    [
      ( "vec",
        [
          Alcotest.test_case "dot" `Quick test_vec_dot;
          Alcotest.test_case "dot length mismatch" `Quick test_vec_dot_mismatch;
          Alcotest.test_case "norms" `Quick test_vec_norms;
          Alcotest.test_case "axpy" `Quick test_vec_axpy;
          Alcotest.test_case "normalize" `Quick test_vec_normalize;
          Alcotest.test_case "add/sub/scale" `Quick test_vec_add_sub_scale;
        ] );
      ( "mat",
        [
          Alcotest.test_case "get/set and bounds" `Quick test_mat_get_set;
          Alcotest.test_case "identity is neutral" `Quick test_mat_identity_mul;
          Alcotest.test_case "known 2x2 product" `Quick test_mat_mul_known;
          Alcotest.test_case "mul associativity" `Quick test_mat_mul_associative;
          Alcotest.test_case "transpose involution" `Quick test_mat_transpose_involution;
          Alcotest.test_case "mul_vec vs mul" `Quick test_mat_mul_vec_consistency;
          Alcotest.test_case "mul_vec_transposed" `Quick test_mat_mul_vec_transposed;
          Alcotest.test_case "trace" `Quick test_mat_trace;
          Alcotest.test_case "ragged of_arrays raises" `Quick test_mat_of_arrays_ragged;
          Alcotest.test_case "to/of arrays roundtrip" `Quick test_mat_rows_cols_roundtrip;
          Alcotest.test_case "is_symmetric" `Quick test_mat_is_symmetric;
          Alcotest.test_case "row and col" `Quick test_mat_row_col;
          Alcotest.test_case "mul_nt matches mul (transpose)" `Quick
            test_mat_mul_nt_matches_transpose;
          Alcotest.test_case "mul_nt blocked and parallel" `Quick
            test_mat_mul_nt_blocked_and_parallel;
          Alcotest.test_case "mul_nt zero-skip parity" `Quick test_mat_mul_nt_with_zeros;
          Alcotest.test_case "mul_nt mismatch raises" `Quick test_mat_mul_nt_mismatch;
        ] );
      ( "cholesky",
        [
          Alcotest.test_case "reconstructs A" `Quick test_cholesky_reconstructs;
          Alcotest.test_case "factor is lower triangular" `Quick test_cholesky_lower_triangular;
          Alcotest.test_case "upper factor" `Quick test_cholesky_upper_matches;
          Alcotest.test_case "indefinite raises" `Quick test_cholesky_indefinite_raises;
          Alcotest.test_case "jitter on semidefinite" `Quick test_cholesky_jitter_on_semidefinite;
          Alcotest.test_case "jitter on rank-deficient" `Quick
            test_cholesky_jittered_rank_deficient;
          Alcotest.test_case "jittered indefinite raises" `Quick
            test_cholesky_jittered_indefinite_raises;
          Alcotest.test_case "solve" `Quick test_cholesky_solve;
          Alcotest.test_case "log_det" `Quick test_cholesky_log_det;
        ] );
      ( "lu",
        [
          Alcotest.test_case "solve" `Quick test_lu_solve;
          Alcotest.test_case "det known" `Quick test_lu_det_known;
          Alcotest.test_case "det permutation sign" `Quick test_lu_det_permutation_sign;
          Alcotest.test_case "singular raises" `Quick test_lu_singular;
          Alcotest.test_case "inverse" `Quick test_lu_inverse;
        ] );
      ( "sym_eig",
        [
          Alcotest.test_case "diagonal matrix" `Quick test_eig_diagonal;
          Alcotest.test_case "known 2x2" `Quick test_eig_known_2x2;
          Alcotest.test_case "residual on random sym" `Quick test_eig_residual_random;
          Alcotest.test_case "orthonormal eigenvectors" `Quick test_eig_orthonormal_vectors;
          Alcotest.test_case "trace identity" `Quick test_eig_trace_identity;
          Alcotest.test_case "values sorted descending" `Quick test_eig_values_sorted;
          Alcotest.test_case "matches jacobi" `Quick test_eig_matches_jacobi;
          Alcotest.test_case "degenerate eigenvalues" `Quick test_eig_degenerate_eigenvalues;
          Alcotest.test_case "1x1" `Quick test_eig_1x1;
          Alcotest.test_case "numerically low-rank (regression)" `Quick test_eig_numerically_low_rank;
        ] );
      ("jacobi", [ Alcotest.test_case "residual" `Quick test_jacobi_residual ]);
      ( "lanczos",
        [
          Alcotest.test_case "matches dense top-k" `Quick test_lanczos_matches_dense;
          Alcotest.test_case "eigenvector residuals" `Quick test_lanczos_eigenvectors;
          Alcotest.test_case "orthonormal ritz vectors" `Quick test_lanczos_orthonormal_ritz;
          Alcotest.test_case "k = n" `Quick test_lanczos_full_dimension;
          Alcotest.test_case "invalid k raises" `Quick test_lanczos_invalid_k;
          Alcotest.test_case "deterministic" `Quick test_lanczos_deterministic;
        ] );
      ( "sparse_cg",
        [
          Alcotest.test_case "sparse structure" `Quick test_sparse_structure;
          Alcotest.test_case "duplicate triplets sum" `Quick test_sparse_duplicate_triplets_sum;
          Alcotest.test_case "matvec matches dense" `Quick test_sparse_matvec_matches_dense;
          Alcotest.test_case "bad index rejected" `Quick test_sparse_bad_index;
          Alcotest.test_case "cg solves laplacian" `Quick test_cg_solves_laplacian;
          Alcotest.test_case "cg matches cholesky" `Quick test_cg_matches_cholesky;
          Alcotest.test_case "cg warm start" `Quick test_cg_warm_start;
          Alcotest.test_case "cg budget exhaustion" `Quick test_cg_budget_exhaustion;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_eig_trace; prop_cholesky_roundtrip; prop_lu_solve; prop_eig_psd_nonnegative ]
      );
    ]
