(* Persistence layer: explicit binary codec, typed entities, and the
   content-addressed store — including the two contract-critical
   properties: store round-trips are bit-identical under run_mc for every
   jobs count, and corrupt entries degrade to a recorded recompute. *)

module Codec = Persist.Codec
module Entity = Persist.Entity
module Store = Persist.Store

let with_tmp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "persist-test.%d.%d" (Unix.getpid ()) (Random.int 1_000_000))
  in
  Fun.protect
    ~finally:(fun () ->
      (try Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir)
       with Sys_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

(* ---------- codec primitives ---------- *)

let test_codec_ints () =
  let values =
    [ 0; 1; -1; 63; 64; -64; -65; 127; 128; 255; 1_000_000; -1_000_000; max_int; min_int ]
  in
  let w = Codec.writer () in
  List.iter (fun v -> Codec.write_int w v) values;
  let r = Codec.reader (Codec.contents w) in
  List.iter
    (fun v -> Alcotest.(check int) (Printf.sprintf "int %d" v) v (Codec.read_int r))
    values;
  Codec.expect_end r

let test_codec_uints () =
  let values = [ 0; 1; 127; 128; 16384; max_int ] in
  let w = Codec.writer () in
  List.iter (fun v -> Codec.write_uint w v) values;
  let r = Codec.reader (Codec.contents w) in
  List.iter
    (fun v -> Alcotest.(check int) (Printf.sprintf "uint %d" v) v (Codec.read_uint r))
    values;
  Alcotest.check_raises "negative uint" (Invalid_argument "Codec.write_uint: negative")
    (fun () -> Codec.write_uint (Codec.writer ()) (-1))

let test_codec_floats_bit_exact () =
  let values =
    [ 0.0; -0.0; 1.0; -1.5; Float.pi; 1e-308; 1e308; Float.infinity; Float.neg_infinity;
      Float.nan; Float.min_float; Float.max_float; 0x1.fffffffffffffp-2 ]
  in
  let w = Codec.writer () in
  List.iter (fun v -> Codec.write_float w v) values;
  let r = Codec.reader (Codec.contents w) in
  List.iter
    (fun v ->
      let got = Codec.read_float r in
      Alcotest.(check int64)
        (Printf.sprintf "float %h bits" v)
        (Int64.bits_of_float v) (Int64.bits_of_float got))
    values

let test_codec_strings_arrays_options () =
  let w = Codec.writer () in
  Codec.write_string w "";
  Codec.write_string w "hello\x00world\xff";
  Codec.write_option w Codec.write_string None;
  Codec.write_option w Codec.write_string (Some "x");
  Codec.write_float_array w [| 1.5; -2.25 |];
  Codec.write_int_array w [| 3; -4; 0 |];
  let r = Codec.reader (Codec.contents w) in
  Alcotest.(check string) "empty" "" (Codec.read_string r);
  Alcotest.(check string) "binary" "hello\x00world\xff" (Codec.read_string r);
  Alcotest.(check (option string)) "none" None (Codec.read_option r Codec.read_string);
  Alcotest.(check (option string)) "some" (Some "x") (Codec.read_option r Codec.read_string);
  Alcotest.(check (array (float 0.0))) "floats" [| 1.5; -2.25 |] (Codec.read_float_array r);
  Alcotest.(check (array int)) "ints" [| 3; -4; 0 |] (Codec.read_int_array r);
  Codec.expect_end r

let expect_codec_error f =
  match f () with
  | _ -> Alcotest.fail "expected Codec.Error"
  | exception Codec.Error _ -> ()

let test_codec_corrupt_input () =
  expect_codec_error (fun () -> Codec.read_float (Codec.reader "abc"));
  expect_codec_error (fun () -> Codec.read_string (Codec.reader "\x05ab"));
  expect_codec_error (fun () -> Codec.read_bool (Codec.reader "\x07"));
  (* array length larger than the remaining input must not allocate *)
  expect_codec_error (fun () -> Codec.read_float_array (Codec.reader "\xff\xff\x7f"));
  expect_codec_error (fun () ->
      let r = Codec.reader "\x00\x00" in
      ignore (Codec.read_u8 r);
      Codec.expect_end r)

let test_fnv64 () =
  (* published FNV-1a 64 test vectors *)
  Alcotest.(check int64) "empty" 0xcbf29ce484222325L (Codec.fnv64 "");
  Alcotest.(check int64) "a" 0xaf63dc4c8601ec8cL (Codec.fnv64 "a");
  Alcotest.(check string) "hex" "af63dc4c8601ec8c" (Codec.fnv64_hex "a")

(* ---------- entities ---------- *)

let small_mesh () =
  (Geometry.Refine.mesh Geometry.Rect.unit_die ~max_area_fraction:0.05 ~min_angle_deg:28.0)
    .Geometry.Geometry_intf.mesh

let paper_kernel () = Kernels.Fit.paper_gaussian ()

let small_solution () = Kle.Galerkin.solve (small_mesh ()) (paper_kernel ())

let small_netlist () =
  Circuit.Generator.generate
    { Circuit.Generator.name = "persist-test"; n_gates = 60; n_inputs = 6; n_outputs = 4;
      dff_fraction = 0.0; seed = 11 }

let roundtrip entity v = Entity.of_string entity (Entity.to_string entity v)

let check_mat msg a b =
  let ra = Linalg.Mat.raw a and rb = Linalg.Mat.raw b in
  Alcotest.(check int) (msg ^ " size") (Bigarray.Array1.dim ra) (Bigarray.Array1.dim rb);
  for i = 0 to Bigarray.Array1.dim ra - 1 do
    let x = Bigarray.Array1.unsafe_get ra i and y = Bigarray.Array1.unsafe_get rb i in
    if Int64.bits_of_float x <> Int64.bits_of_float y then
      Alcotest.failf "%s: element %d differs (%h vs %h)" msg i x y
  done

let test_entity_kernel () =
  List.iter
    (fun k ->
      let k' = roundtrip Entity.kernel k in
      Alcotest.(check string) "spec" (Entity.kernel_spec k) (Entity.kernel_spec k'))
    [ paper_kernel (); Kernels.Kernel.Exponential { c = 0.3 };
      Kernels.Kernel.Matern { b = 1.0; s = 2.5 }; Kernels.Kernel.Linear_cone { rho = 0.4 } ]

let test_entity_mesh () =
  let mesh = small_mesh () in
  let mesh' = roundtrip Entity.mesh mesh in
  Alcotest.(check int) "size" (Geometry.Mesh.size mesh) (Geometry.Mesh.size mesh');
  Alcotest.(check (float 0.0)) "min angle" (Geometry.Mesh.min_angle_deg mesh)
    (Geometry.Mesh.min_angle_deg mesh')

let test_entity_solution_and_model () =
  let solution = small_solution () in
  let solution' = roundtrip Entity.solution solution in
  Alcotest.(check (array (float 0.0)))
    "eigenvalues" solution.Kle.Galerkin.eigenvalues solution'.Kle.Galerkin.eigenvalues;
  check_mat "coefficients" solution.Kle.Galerkin.coefficients solution'.Kle.Galerkin.coefficients;
  let model = Kle.Model.create ~r:5 solution in
  let model' = roundtrip Entity.model model in
  Alcotest.(check int) "r" model.Kle.Model.r model'.Kle.Model.r

(* adversarial matrix header: dims whose byte count rows*cols*8 overflows
   int (2^31 * 2^31 * 8 ≡ 0 mod 2^63) must be rejected as corrupt before
   any allocation is attempted, not slip past a wrapped size check *)
let test_entity_mat_dims_overflow () =
  let solution = small_solution () in
  let full = Entity.to_string Entity.solution solution in
  (* the coefficient matrix is the encoding's final field: replace it with
     a crafted [rows; cols] header and no payload *)
  let coeff = solution.Kle.Galerkin.coefficients in
  let varint_len v =
    let rec go v n = if v < 0x80 then n else go (v lsr 7) (n + 1) in
    go v 1
  in
  let rows = Linalg.Mat.rows coeff and cols = Linalg.Mat.cols coeff in
  let mat_len = varint_len rows + varint_len cols + (8 * rows * cols) in
  let prefix = String.sub full 0 (String.length full - mat_len) in
  let b = Codec.writer () in
  Codec.write_uint b (1 lsl 31);
  Codec.write_uint b (1 lsl 31);
  expect_codec_error (fun () ->
      ignore (Entity.of_string Entity.solution (prefix ^ Codec.contents b)))

let test_entity_netlist () =
  let nl = small_netlist () in
  let nl' = roundtrip Entity.netlist nl in
  Alcotest.(check string) "name" nl.Circuit.Netlist.name nl'.Circuit.Netlist.name;
  Alcotest.(check int) "gates" (Array.length nl.Circuit.Netlist.gates)
    (Array.length nl'.Circuit.Netlist.gates);
  Alcotest.(check (array int)) "outputs" nl.Circuit.Netlist.outputs nl'.Circuit.Netlist.outputs;
  Array.iteri
    (fun i (g : Circuit.Netlist.gate) ->
      let g' = nl'.Circuit.Netlist.gates.(i) in
      Alcotest.(check string) "gate name" g.Circuit.Netlist.name g'.Circuit.Netlist.name;
      Alcotest.(check (array int)) "fanins" g.Circuit.Netlist.fanins g'.Circuit.Netlist.fanins)
    nl.Circuit.Netlist.gates

let test_entity_circuit_setup () =
  let setup = Ssta.Experiment.setup_circuit (small_netlist ()) in
  let setup' = roundtrip Entity.circuit_setup setup in
  Alcotest.(check (array int)) "logic ids" setup.Ssta.Experiment.logic_ids
    setup'.Ssta.Experiment.logic_ids;
  Array.iteri
    (fun i (p : Geometry.Point.t) ->
      let p' = setup'.Ssta.Experiment.locations.(i) in
      Alcotest.(check (float 0.0)) "x" p.Geometry.Point.x p'.Geometry.Point.x;
      Alcotest.(check (float 0.0)) "y" p.Geometry.Point.y p'.Geometry.Point.y)
    setup.Ssta.Experiment.locations

let test_entity_sampler () =
  let model = Kle.Model.create ~r:5 (small_solution ()) in
  let setup = Ssta.Experiment.setup_circuit (small_netlist ()) in
  let sampler = Kle.Sampler.create model setup.Ssta.Experiment.locations in
  let sampler' = roundtrip Entity.sampler sampler in
  check_mat "expansion" (Kle.Sampler.expansion sampler) (Kle.Sampler.expansion sampler')

let small_hmatrix () =
  let mesh = small_mesh () in
  let hier =
    { Kle.Hmatrix.default_params with Kle.Hmatrix.leaf_size = 8; tol = 1e-8 }
  in
  match Kle.Operator.hmatrix_galerkin ~hier mesh (paper_kernel ()) with
  | Ok h -> h
  | Error msg -> Alcotest.fail ("hierarchical build stalled: " ^ msg)

let test_entity_hmatrix () =
  let h = small_hmatrix () in
  let h' = roundtrip Entity.hmatrix h in
  Alcotest.(check int) "n" h.Kle.Hmatrix.n h'.Kle.Hmatrix.n;
  Alcotest.(check (array int)) "perm" h.Kle.Hmatrix.perm h'.Kle.Hmatrix.perm;
  Alcotest.(check int) "blocks" (Array.length h.Kle.Hmatrix.blocks)
    (Array.length h'.Kle.Hmatrix.blocks);
  Alcotest.(check int) "rank sum" h.Kle.Hmatrix.stats.Kle.Hmatrix.rank_sum
    h'.Kle.Hmatrix.stats.Kle.Hmatrix.rank_sum;
  (* the loaded operator is the same linear map, bit for bit *)
  let x = Array.init h.Kle.Hmatrix.n (fun i -> sin (float_of_int i)) in
  Alcotest.(check (array (float 0.0)))
    "apply bit-identical" (Kle.Hmatrix.apply h x) (Kle.Hmatrix.apply h' x)

let test_entity_hmatrix_corrupt_rejected () =
  let h = small_hmatrix () in
  let full = Entity.to_string Entity.hmatrix h in
  (* truncation must raise, not misread *)
  expect_codec_error (fun () ->
      ignore (Entity.of_string Entity.hmatrix (String.sub full 0 (String.length full / 2))));
  (* a structurally broken permutation must be caught by validate: entry 0
     of the perm is a varint in [0, n); force a duplicate by swapping in
     the second entry's byte (n < 128 here, so one byte per index) *)
  let b = Bytes.of_string full in
  let perm_off =
    (* skip the leading uint n (single byte for this mesh size) *)
    1 + 1
    (* ... and the perm length varint *)
  in
  Bytes.set b perm_off (Bytes.get b (perm_off + 1));
  expect_codec_error (fun () ->
      ignore (Entity.of_string Entity.hmatrix (Bytes.to_string b)))

(* ---------- store ---------- *)

let test_store_roundtrip_and_outcomes () =
  with_tmp_dir @@ fun dir ->
  let diag = Util.Diag.create () in
  let store = Store.open_ ~diag ~dir () in
  let nl = small_netlist () in
  Alcotest.(check bool) "absent" true (Store.get store Entity.netlist ~spec:"nl" = None);
  let v, outcome = Store.find_or_add store Entity.netlist ~spec:"nl" (fun () -> nl) in
  Alcotest.(check bool) "miss outcome" true (outcome = `Miss);
  Alcotest.(check string) "computed" nl.Circuit.Netlist.name v.Circuit.Netlist.name;
  let v, outcome =
    Store.find_or_add store Entity.netlist ~spec:"nl" (fun () ->
        Alcotest.fail "must not recompute on hit")
  in
  Alcotest.(check bool) "hit outcome" true (outcome = `Hit);
  Alcotest.(check string) "loaded" nl.Circuit.Netlist.name v.Circuit.Netlist.name;
  let stats = Store.stats store in
  Alcotest.(check int) "one write" 1 stats.Store.writes;
  Alcotest.(check int) "one entry" 1 stats.Store.entries;
  Alcotest.(check int) "no diagnostics" 0 (Util.Diag.length diag)

let flip_byte path offset =
  let ic = open_in_bin path in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let b = Bytes.of_string data in
  let i = Bytes.length b - 1 - offset in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let test_store_corrupt_entry_falls_back () =
  with_tmp_dir @@ fun dir ->
  let diag = Util.Diag.create () in
  let store = Store.open_ ~diag ~dir () in
  let nl = small_netlist () in
  Store.put store Entity.netlist ~spec:"nl" nl;
  let path = Store.path store Entity.netlist ~spec:"nl" in
  (* flip a payload byte: the checksum must catch it *)
  flip_byte path 20;
  let recomputed = ref false in
  let v, outcome =
    Store.find_or_add store Entity.netlist ~spec:"nl" (fun () ->
        recomputed := true;
        nl)
  in
  Alcotest.(check bool) "recovered outcome" true (outcome = `Recovered);
  Alcotest.(check bool) "recomputed" true !recomputed;
  Alcotest.(check string) "value" nl.Circuit.Netlist.name v.Circuit.Netlist.name;
  Alcotest.(check int) "degraded-fallback warning" 1
    (Util.Diag.count ~min_severity:Util.Diag.Warning ~code:`Degraded_fallback diag);
  (* the recompute path re-wrote the entry, so the next read is a hit *)
  let _, outcome =
    Store.find_or_add store Entity.netlist ~spec:"nl" (fun () -> Alcotest.fail "hit expected")
  in
  Alcotest.(check bool) "hit after repair" true (outcome = `Hit)

let test_store_truncated_entry_falls_back () =
  with_tmp_dir @@ fun dir ->
  let diag = Util.Diag.create () in
  let store = Store.open_ ~diag ~dir () in
  let nl = small_netlist () in
  Store.put store Entity.netlist ~spec:"nl" nl;
  let path = Store.path store Entity.netlist ~spec:"nl" in
  let ic = open_in_bin path in
  let data = really_input_string ic (in_channel_length ic / 2) in
  close_in ic;
  Util.Fileio.write_atomic path data;
  Alcotest.(check bool) "corrupt -> None" true (Store.get store Entity.netlist ~spec:"nl" = None);
  Alcotest.(check bool) "corrupt file removed" false (Sys.file_exists path);
  Alcotest.(check int) "warning recorded" 1
    (Util.Diag.count ~min_severity:Util.Diag.Warning ~code:`Degraded_fallback diag)

let test_store_stale_version_falls_back () =
  with_tmp_dir @@ fun dir ->
  let diag = Util.Diag.create () in
  let store = Store.open_ ~diag ~dir () in
  let nl = small_netlist () in
  Store.put store Entity.netlist ~spec:"nl" nl;
  (* the same entry read through a bumped codec version is stale, not corrupt *)
  let bumped = { Entity.netlist with Entity.version = Entity.netlist.Entity.version + 1 } in
  let recomputed = ref false in
  let _, outcome =
    Store.find_or_add store bumped ~spec:"nl" (fun () ->
        recomputed := true;
        nl)
  in
  Alcotest.(check bool) "recovered" true (outcome = `Recovered);
  Alcotest.(check bool) "recomputed" true !recomputed;
  Alcotest.(check int) "info event, not warning" 0
    (Util.Diag.count ~min_severity:Util.Diag.Warning diag);
  Alcotest.(check int) "info recorded" 1 (Util.Diag.count ~code:`Degraded_fallback diag)

let test_store_spec_collision_is_safe () =
  with_tmp_dir @@ fun dir ->
  let store = Store.open_ ~dir () in
  let nl = small_netlist () in
  Store.put store Entity.netlist ~spec:"spec-a" nl;
  (* forge a colliding file: same path as another spec would never happen
     with fnv64, so simulate by copying the entry to spec-b's path *)
  let a = Store.path store Entity.netlist ~spec:"spec-a" in
  let b = Store.path store Entity.netlist ~spec:"spec-b" in
  let ic = open_in_bin a in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Util.Fileio.write_atomic b data;
  (* the stored spec string no longer matches: must not be served *)
  Alcotest.(check bool) "collision not served" true
    (Store.get store Entity.netlist ~spec:"spec-b" = None)

(* ---------- deterministic I/O fault injection ---------- *)

(* an injected read error is transient: the entry must NOT be deleted —
   the file is intact, only this read failed *)
let test_store_injected_read_error () =
  with_tmp_dir @@ fun dir ->
  let diag = Util.Diag.create () in
  let store =
    Store.open_ ~diag
      ~io_faults:[ Util.Fault.io_plan ~limit:1 Util.Fault.Read_error ]
      ~dir ()
  in
  let nl = small_netlist () in
  Store.put store Entity.netlist ~spec:"nl" nl;
  let path = Store.path store Entity.netlist ~spec:"nl" in
  Alcotest.(check bool) "failed read is a miss" true
    (Store.get store Entity.netlist ~spec:"nl" = None);
  Alcotest.(check bool) "file survives the read failure" true (Sys.file_exists path);
  Alcotest.(check int) "read_failures counted" 1 (Store.stats store).Store.read_failures;
  Alcotest.(check bool) "fault event recorded" true
    (Util.Diag.count ~code:`Fault_injected diag >= 1);
  (* the plan is exhausted: the intact entry is served again *)
  Alcotest.(check bool) "served once the fault clears" true
    (Store.get store Entity.netlist ~spec:"nl" <> None)

(* a short read yields a truncated image: detected as corrupt by the
   checksum, deleted, recomputed *)
let test_store_injected_short_read () =
  with_tmp_dir @@ fun dir ->
  let diag = Util.Diag.create () in
  let store =
    Store.open_ ~diag
      ~io_faults:[ Util.Fault.io_plan ~limit:1 Util.Fault.Short_read ]
      ~dir ()
  in
  let nl = small_netlist () in
  Store.put store Entity.netlist ~spec:"nl" nl;
  let path = Store.path store Entity.netlist ~spec:"nl" in
  Alcotest.(check bool) "short read detected as corrupt" true
    (Store.get store Entity.netlist ~spec:"nl" = None);
  Alcotest.(check bool) "corrupt image removed" false (Sys.file_exists path)

(* a torn write lands a prefix at the final path (bypassing the atomic
   protocol); the next access detects it and recovers *)
let test_store_injected_torn_write () =
  with_tmp_dir @@ fun dir ->
  let diag = Util.Diag.create () in
  let store =
    Store.open_ ~diag
      ~io_faults:[ Util.Fault.io_plan ~limit:1 Util.Fault.Torn_write ]
      ~dir ()
  in
  let nl = small_netlist () in
  Store.put store Entity.netlist ~spec:"nl" nl;
  Alcotest.(check bool) "torn prefix landed" true
    (Sys.file_exists (Store.path store Entity.netlist ~spec:"nl"));
  let recomputed = ref false in
  let _, outcome =
    Store.find_or_add store Entity.netlist ~spec:"nl" (fun () ->
        recomputed := true;
        nl)
  in
  Alcotest.(check bool) "recovered" true (outcome = `Recovered);
  Alcotest.(check bool) "recomputed" true !recomputed;
  (* the clean re-write (plan exhausted) is a hit afterwards *)
  let _, outcome =
    Store.find_or_add store Entity.netlist ~spec:"nl" (fun () -> Alcotest.fail "hit expected")
  in
  Alcotest.(check bool) "hit after recovery" true (outcome = `Hit)

(* latency faults only delay; results stay correct and each firing is
   recorded *)
let test_store_injected_latency () =
  with_tmp_dir @@ fun dir ->
  let diag = Util.Diag.create () in
  let store =
    Store.open_ ~diag
      ~io_faults:[ Util.Fault.io_plan ~period:1 ~limit:2 (Util.Fault.Latency 1.0) ]
      ~dir ()
  in
  let nl = small_netlist () in
  Store.put store Entity.netlist ~spec:"nl" nl;
  (match Store.get store Entity.netlist ~spec:"nl" with
  | Some v -> Alcotest.(check string) "value intact" nl.Circuit.Netlist.name v.Circuit.Netlist.name
  | None -> Alcotest.fail "latency must not lose the entry");
  Alcotest.(check int) "both firings recorded" 2 (Util.Diag.count ~code:`Fault_injected diag)

(* ---------- fsck ---------- *)

let write_raw path data = Util.Fileio.write_atomic path data

let test_store_fsck_classification () =
  with_tmp_dir @@ fun dir ->
  let store = Store.open_ ~dir () in
  let nl = small_netlist () in
  Store.put store Entity.netlist ~spec:"good" nl;
  Store.put store Entity.netlist ~spec:"bad" nl;
  flip_byte (Store.path store Entity.netlist ~spec:"bad") 20;
  (* a stale entry: same codec, bumped entity version *)
  let bumped = { Entity.netlist with Entity.version = Entity.netlist.Entity.version + 1 } in
  Store.put store bumped ~spec:"old" nl;
  (* an orphaned atomic-write temporary *)
  write_raw (Filename.concat dir "netlist-deadbeef.bin.tmp.123.4") "partial";
  let diag = Util.Diag.create () in
  let r = Store.fsck ~diag ~dir () in
  Alcotest.(check int) "scanned" 3 r.Store.scanned;
  Alcotest.(check int) "ok" 1 r.Store.ok;
  Alcotest.(check int) "corrupt" 1 r.Store.corrupt;
  Alcotest.(check int) "stale" 1 r.Store.stale;
  Alcotest.(check int) "tmp files" 1 r.Store.tmp_files;
  Alcotest.(check int) "nothing GC'd without a cap" 0 r.Store.gc_evicted;
  (* dry run: nothing was deleted *)
  Alcotest.(check int) "dry run leaves all files" 4 (Array.length (Sys.readdir dir));
  Alcotest.(check bool) "events recorded" true (Util.Diag.length diag >= 3)

let test_store_fsck_repair () =
  with_tmp_dir @@ fun dir ->
  let store = Store.open_ ~dir () in
  let nl = small_netlist () in
  Store.put store Entity.netlist ~spec:"good" nl;
  Store.put store Entity.netlist ~spec:"bad" nl;
  flip_byte (Store.path store Entity.netlist ~spec:"bad") 20;
  let bumped = { Entity.netlist with Entity.version = Entity.netlist.Entity.version + 1 } in
  Store.put store bumped ~spec:"old" nl;
  write_raw (Filename.concat dir "netlist-deadbeef.bin.tmp.123.4") "partial";
  let r = Store.fsck ~repair:true ~dir () in
  Alcotest.(check int) "corrupt found" 1 r.Store.corrupt;
  Alcotest.(check int) "tmp swept" 1 r.Store.tmp_files;
  (* repair removes the corrupt entry and the orphan; the good entry stays
     and the stale one is left to self-heal on next access *)
  Alcotest.(check bool) "corrupt gone" false
    (Sys.file_exists (Store.path store Entity.netlist ~spec:"bad"));
  Alcotest.(check bool) "good kept" true
    (Sys.file_exists (Store.path store Entity.netlist ~spec:"good"));
  Alcotest.(check bool) "stale kept" true
    (Sys.file_exists (Store.path store Entity.netlist ~spec:"old"));
  Alcotest.(check int) "two files remain" 2 (Array.length (Sys.readdir dir));
  (* idempotent: a second repair finds a clean store *)
  let r2 = Store.fsck ~repair:true ~dir () in
  Alcotest.(check int) "second pass clean" 0 (r2.Store.corrupt + r2.Store.tmp_files)

let test_store_fsck_gc_oldest_first () =
  with_tmp_dir @@ fun dir ->
  let store = Store.open_ ~dir () in
  let nl = small_netlist () in
  List.iter (fun spec -> Store.put store Entity.netlist ~spec nl) [ "a"; "b"; "c" ];
  let path spec = Store.path store Entity.netlist ~spec in
  let size = (Unix.stat (path "a")).Unix.st_size in
  (* pin distinct mtimes: a oldest, c newest *)
  List.iteri
    (fun i spec ->
      let t = Unix.time () -. 3600.0 +. (float_of_int i *. 60.0) in
      Unix.utimes (path spec) t t)
    [ "a"; "b"; "c" ];
  (* cap fits two entries: only the oldest is evicted *)
  let r = Store.fsck ~repair:true ~max_bytes:(2 * size) ~dir () in
  Alcotest.(check int) "one eviction" 1 r.Store.gc_evicted;
  Alcotest.(check bool) "oldest evicted" false (Sys.file_exists (path "a"));
  Alcotest.(check bool) "b kept" true (Sys.file_exists (path "b"));
  Alcotest.(check bool) "c kept" true (Sys.file_exists (path "c"));
  Alcotest.(check bool) "bytes_after under cap" true (r.Store.bytes_after <= 2 * size);
  (* dry run projects the same eviction without deleting *)
  let store2 = Store.open_ ~dir () in
  Store.put store2 Entity.netlist ~spec:"a" nl;
  Unix.utimes (path "a") 1.0 1.0;
  let dry = Store.fsck ~max_bytes:(2 * size) ~dir () in
  Alcotest.(check int) "dry-run projects eviction" 1 dry.Store.gc_evicted;
  Alcotest.(check bool) "dry run deletes nothing" true (Sys.file_exists (path "a"))

(* satellite: two domains racing find_or_add over the same corrupt entry.
   Whichever loses the unlink race sees ENOENT on open — that must be a
   plain miss (recompute), never an error surfaced to the caller. *)
let test_store_concurrent_corrupt_delete_race () =
  with_tmp_dir @@ fun dir ->
  let nl = small_netlist () in
  for round = 0 to 9 do
    let store = Store.open_ ~dir () in
    let spec = Printf.sprintf "race-%d" round in
    Store.put store Entity.netlist ~spec nl;
    flip_byte (Store.path store Entity.netlist ~spec) 20;
    let work () =
      let v, outcome = Store.find_or_add store Entity.netlist ~spec (fun () -> nl) in
      (v.Circuit.Netlist.name, outcome)
    in
    let d = Domain.spawn work in
    let here = work () in
    let there = Domain.join d in
    List.iter
      (fun (name, outcome) ->
        Alcotest.(check string) "value correct" nl.Circuit.Netlist.name name;
        Alcotest.(check bool) "typed outcome" true
          (match outcome with `Recovered | `Miss | `Hit -> true))
      [ here; there ]
  done

(* ---------- the bit-identity acceptance criterion ---------- *)

let test_store_roundtrip_run_mc_bit_identical () =
  with_tmp_dir @@ fun dir ->
  let store = Store.open_ ~dir () in
  let setup_fresh = Ssta.Experiment.setup_circuit (small_netlist ()) in
  let setup_loaded, _ =
    Store.find_or_add store Entity.circuit_setup ~spec:"setup" (fun () ->
        Ssta.Experiment.setup_circuit (small_netlist ()))
  in
  let setup_loaded, _ =
    ignore setup_loaded;
    Store.find_or_add store Entity.circuit_setup ~spec:"setup" (fun () ->
        Alcotest.fail "setup must load from disk")
  in
  let model_fresh = Kle.Model.create ~r:8 (small_solution ()) in
  let model_loaded, _ =
    Store.find_or_add store Entity.model ~spec:"model" (fun () -> model_fresh)
  in
  let model_loaded, _ =
    ignore model_loaded;
    Store.find_or_add store Entity.model ~spec:"model" (fun () ->
        Alcotest.fail "model must load from disk")
  in
  let run setup model ~jobs =
    let samplers =
      Array.init 4 (fun _ -> Kle.Sampler.create model setup.Ssta.Experiment.locations)
    in
    let sampler rng ~n = Array.map (fun s -> Kle.Sampler.sample_matrix s rng ~n) samplers in
    Ssta.Experiment.run_mc ~jobs ~batch:32 setup ~sampler ~seed:5 ~n:96
  in
  List.iter
    (fun jobs ->
      let fresh = run setup_fresh model_fresh ~jobs in
      let loaded = run setup_loaded model_loaded ~jobs in
      let tag = Printf.sprintf "-j %d" jobs in
      Alcotest.(check int) (tag ^ " bits mean") 0
        (Int64.compare
           (Int64.bits_of_float fresh.Ssta.Experiment.worst_mean)
           (Int64.bits_of_float loaded.Ssta.Experiment.worst_mean));
      Alcotest.(check int) (tag ^ " bits sigma") 0
        (Int64.compare
           (Int64.bits_of_float fresh.Ssta.Experiment.worst_sigma)
           (Int64.bits_of_float loaded.Ssta.Experiment.worst_sigma));
      Array.iteri
        (fun i m ->
          if
            Int64.bits_of_float m
            <> Int64.bits_of_float loaded.Ssta.Experiment.endpoint_mean.(i)
          then Alcotest.failf "%s endpoint mean %d differs" tag i)
        fresh.Ssta.Experiment.endpoint_mean;
      Array.iteri
        (fun i s ->
          if
            Int64.bits_of_float s
            <> Int64.bits_of_float loaded.Ssta.Experiment.endpoint_sigma.(i)
          then Alcotest.failf "%s endpoint sigma %d differs" tag i)
        fresh.Ssta.Experiment.endpoint_sigma)
    [ 1; 2 ]

(* ---------- dependency graph ---------- *)

module Depgraph = Persist.Depgraph

(* a tiny string-payload entity so edge wiring is cheap to exercise *)
let note : string Entity.t =
  {
    Entity.kind = "test-note";
    version = 1;
    encode = Codec.write_string;
    decode = Codec.read_string;
  }

let test_depgraph_edges_and_dependents () =
  with_tmp_dir @@ fun dir ->
  let dg = Depgraph.create (Store.open_ ~dir ()) in
  let a = Depgraph.node note ~spec:"a" in
  let b = Depgraph.node note ~spec:"b" in
  let va, oa = Depgraph.find_or_add dg note ~spec:"a" (fun () -> "A") in
  Alcotest.(check string) "a value" "A" va;
  Alcotest.(check bool) "a miss" true (oa = `Miss);
  let vs, _ =
    Depgraph.find_or_add dg note ~spec:"sum" ~deps:[ a; b ] (fun () -> "A+B")
  in
  Alcotest.(check string) "sum value" "A+B" vs;
  let s = Depgraph.node note ~spec:"sum" in
  Alcotest.(check bool) "a -> sum" true (Depgraph.dependents dg a = [ s ]);
  Alcotest.(check bool) "b -> sum" true (Depgraph.dependents dg b = [ s ]);
  Alcotest.(check bool) "sum is a leaf" true (Depgraph.dependents dg s = []);
  (* edges re-record on hits too (self-healing) *)
  let _, oh = Depgraph.find_or_add dg note ~spec:"sum" ~deps:[ a; b ] (fun () -> "no") in
  Alcotest.(check bool) "sum hit" true (oh = `Hit);
  Alcotest.(check bool) "a -> sum stable" true (Depgraph.dependents dg a = [ s ])

let test_depgraph_invalidate_exact_closure () =
  with_tmp_dir @@ fun dir ->
  let store = Store.open_ ~dir () in
  let dg = Depgraph.create store in
  (* a -> mid -> top, with `other` unrelated *)
  let a = Depgraph.node note ~spec:"a" in
  let mid = Depgraph.node note ~spec:"mid" in
  let top = Depgraph.node note ~spec:"top" in
  ignore (Depgraph.find_or_add dg note ~spec:"a" (fun () -> "A"));
  ignore (Depgraph.find_or_add dg note ~spec:"mid" ~deps:[ a ] (fun () -> "M"));
  ignore (Depgraph.find_or_add dg note ~spec:"top" ~deps:[ mid ] (fun () -> "T"));
  ignore (Depgraph.find_or_add dg note ~spec:"other" (fun () -> "O"));
  let removed = Depgraph.invalidate dg a in
  (* the node first, then discovery order down the closure *)
  Alcotest.(check bool) "closure removed" true (removed = [ a; mid; top ]);
  Alcotest.(check (option string)) "a gone" None (Depgraph.get dg note ~spec:"a");
  Alcotest.(check (option string)) "mid gone" None (Depgraph.get dg note ~spec:"mid");
  Alcotest.(check (option string)) "top gone" None (Depgraph.get dg note ~spec:"top");
  Alcotest.(check (option string)) "unrelated untouched" (Some "O")
    (Depgraph.get dg note ~spec:"other");
  (* edge lists of the deleted entries are gone too *)
  Alcotest.(check bool) "a edges cleared" true (Depgraph.dependents dg a = []);
  (* rebuild re-files the edges *)
  ignore (Depgraph.find_or_add dg note ~spec:"a" (fun () -> "A2"));
  ignore (Depgraph.find_or_add dg note ~spec:"mid" ~deps:[ a ] (fun () -> "M2"));
  Alcotest.(check bool) "a -> mid restored" true (Depgraph.dependents dg a = [ mid ])

let test_depgraph_edges_survive_reopen () =
  with_tmp_dir @@ fun dir ->
  let a = Depgraph.node note ~spec:"a" in
  (let dg = Depgraph.create (Store.open_ ~dir ()) in
   ignore (Depgraph.find_or_add dg note ~spec:"a" (fun () -> "A"));
   ignore (Depgraph.find_or_add dg note ~spec:"out" ~deps:[ a ] (fun () -> "OUT")));
  (* a fresh wrapper over the same directory sees the persisted edges *)
  let dg2 = Depgraph.create (Store.open_ ~dir ()) in
  let removed = Depgraph.invalidate dg2 a in
  Alcotest.(check int) "both entries removed" 2 (List.length removed);
  Alcotest.(check (option string)) "out gone" None (Depgraph.get dg2 note ~spec:"out")

let () =
  Alcotest.run "persist"
    [
      ( "codec",
        [
          Alcotest.test_case "signed varints" `Quick test_codec_ints;
          Alcotest.test_case "unsigned varints" `Quick test_codec_uints;
          Alcotest.test_case "floats bit-exact" `Quick test_codec_floats_bit_exact;
          Alcotest.test_case "strings/arrays/options" `Quick test_codec_strings_arrays_options;
          Alcotest.test_case "corrupt input raises" `Quick test_codec_corrupt_input;
          Alcotest.test_case "fnv-1a 64 vectors" `Quick test_fnv64;
        ] );
      ( "entity",
        [
          Alcotest.test_case "kernel" `Quick test_entity_kernel;
          Alcotest.test_case "mesh" `Quick test_entity_mesh;
          Alcotest.test_case "solution + model" `Quick test_entity_solution_and_model;
          Alcotest.test_case "matrix dims overflow" `Quick test_entity_mat_dims_overflow;
          Alcotest.test_case "netlist" `Quick test_entity_netlist;
          Alcotest.test_case "circuit setup" `Quick test_entity_circuit_setup;
          Alcotest.test_case "sampler" `Quick test_entity_sampler;
          Alcotest.test_case "hmatrix" `Quick test_entity_hmatrix;
          Alcotest.test_case "hmatrix corrupt rejected" `Quick
            test_entity_hmatrix_corrupt_rejected;
        ] );
      ( "store",
        [
          Alcotest.test_case "roundtrip + outcomes" `Quick test_store_roundtrip_and_outcomes;
          Alcotest.test_case "corrupt entry falls back" `Quick
            test_store_corrupt_entry_falls_back;
          Alcotest.test_case "truncated entry falls back" `Quick
            test_store_truncated_entry_falls_back;
          Alcotest.test_case "stale version falls back" `Quick
            test_store_stale_version_falls_back;
          Alcotest.test_case "spec collision not served" `Quick
            test_store_spec_collision_is_safe;
          Alcotest.test_case "injected read error" `Quick test_store_injected_read_error;
          Alcotest.test_case "injected short read" `Quick test_store_injected_short_read;
          Alcotest.test_case "injected torn write" `Quick test_store_injected_torn_write;
          Alcotest.test_case "injected latency" `Quick test_store_injected_latency;
          Alcotest.test_case "fsck classification" `Quick test_store_fsck_classification;
          Alcotest.test_case "fsck repair" `Quick test_store_fsck_repair;
          Alcotest.test_case "fsck GC oldest-first" `Quick test_store_fsck_gc_oldest_first;
          Alcotest.test_case "concurrent corrupt-delete race" `Quick
            test_store_concurrent_corrupt_delete_race;
          Alcotest.test_case "run_mc bit-identical after roundtrip" `Quick
            test_store_roundtrip_run_mc_bit_identical;
        ] );
      ( "depgraph",
        [
          Alcotest.test_case "edges + dependents" `Quick test_depgraph_edges_and_dependents;
          Alcotest.test_case "invalidate exact closure" `Quick
            test_depgraph_invalidate_exact_closure;
          Alcotest.test_case "edges survive reopen" `Quick test_depgraph_edges_survive_reopen;
        ] );
    ]
