module P = Geometry.Point

let check_close ?(tol = 1e-10) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let die = Geometry.Rect.unit_die

(* ---------- Grid ---------- *)

let test_grid_counts () =
  let g = Powergrid.Grid.create ~nodes_per_side:10 die in
  (* 100 nodes minus 5 default pads (4 corners + center) *)
  Alcotest.(check int) "free nodes" 95 (Powergrid.Grid.node_count g)

let test_grid_tiny_hand_computed () =
  (* 2x2 grid with pads on one diagonal: the two free nodes are the other
     diagonal, each connected to both pads with conductance 1, and not to
     each other => drop = I / 2 at the injected node, independent nodes *)
  let pads = [| P.make (-1.0) (-1.0); P.make 1.0 1.0 |] in
  let g = Powergrid.Grid.create ~nodes_per_side:2 ~edge_conductance:1.0 ~pads die in
  Alcotest.(check int) "two free" 2 (Powergrid.Grid.node_count g);
  let currents = [| 1.0; 0.0 |] in
  let v = Powergrid.Grid.solve g ~currents in
  check_close ~tol:1e-12 "injected node" 0.5 v.(0);
  check_close ~tol:1e-12 "other node" 0.0 v.(1)

let test_grid_superposition () =
  let g = Powergrid.Grid.create ~nodes_per_side:8 die in
  let n = Powergrid.Grid.node_count g in
  let i1 = Array.init n (fun i -> if i mod 3 = 0 then 1e-6 else 0.0) in
  let i2 = Array.init n (fun i -> if i mod 5 = 0 then 2e-6 else 0.0) in
  let sum = Array.init n (fun i -> i1.(i) +. i2.(i)) in
  let v1 = Powergrid.Grid.solve g ~currents:i1 in
  let v2 = Powergrid.Grid.solve g ~currents:i2 in
  let vs = Powergrid.Grid.solve g ~currents:sum in
  Array.iteri
    (fun i v -> check_close ~tol:1e-15 "linear" (v1.(i) +. v2.(i)) v)
    vs

let test_grid_drop_positive_and_monotone () =
  let g = Powergrid.Grid.create ~nodes_per_side:8 die in
  let n = Powergrid.Grid.node_count g in
  let base = Array.make n 1e-6 in
  let v = Powergrid.Grid.solve g ~currents:base in
  Array.iter (fun d -> Alcotest.(check bool) "positive drop" true (d > 0.0)) v;
  let double = Array.make n 2e-6 in
  check_close ~tol:1e-15 "doubling currents doubles max drop"
    (2.0 *. Powergrid.Grid.max_drop g ~currents:base)
    (Powergrid.Grid.max_drop g ~currents:double)

let test_grid_center_drop_largest_under_uniform_load () =
  (* with pads at corners+center, the max drop under uniform load sits away
     from the pads; verify the node attaining it is not adjacent to a pad *)
  let g = Powergrid.Grid.create ~nodes_per_side:12 die in
  let n = Powergrid.Grid.node_count g in
  let v = Powergrid.Grid.solve g ~currents:(Array.make n 1e-6) in
  let imax = Util.Arrayx.argmax v in
  let loc = Powergrid.Grid.node_location g imax in
  let pad_dist =
    Array.fold_left
      (fun acc (p : P.t) -> Float.min acc (P.dist loc p))
      infinity
      (Array.append (Geometry.Rect.corners die) [| Geometry.Rect.center die |])
  in
  Alcotest.(check bool)
    (Printf.sprintf "hot spot %.2f away from pads" pad_dist)
    true (pad_dist > 0.3)

let test_grid_nearest_node () =
  let g = Powergrid.Grid.create ~nodes_per_side:10 die in
  (* the exact corner is a pad: nearest node is None *)
  Alcotest.(check bool) "corner is pad" true
    (Powergrid.Grid.nearest_node g (P.make (-1.0) (-1.0)) = None);
  (* a generic interior point resolves *)
  Alcotest.(check bool) "interior resolves" true
    (Powergrid.Grid.nearest_node g (P.make 0.31 (-0.42)) <> None)

let test_grid_solve_length_mismatch () =
  let g = Powergrid.Grid.create ~nodes_per_side:6 die in
  Alcotest.(check bool) "raises" true
    (match Powergrid.Grid.solve g ~currents:[| 1.0 |] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_grid_solvers_agree () =
  let dense = Powergrid.Grid.create ~nodes_per_side:9 ~solver:Powergrid.Grid.Dense die in
  let cg = Powergrid.Grid.create ~nodes_per_side:9 ~solver:Powergrid.Grid.Cg die in
  let n = Powergrid.Grid.node_count dense in
  let currents = Array.init n (fun i -> 1e-6 *. float_of_int ((i mod 4) + 1)) in
  let v1 = Powergrid.Grid.solve dense ~currents in
  let v2 = Powergrid.Grid.solve cg ~currents in
  Array.iteri
    (fun i v -> check_close ~tol:1e-8 "same drop" v1.(i) v)
    v2

(* ---------- Leakage ---------- *)

let test_leakage_nominal () =
  let m = Powergrid.Leakage.default in
  check_close ~tol:1e-18 "nominal" m.Powergrid.Leakage.i0
    (Powergrid.Leakage.current m ~params:(Array.make 4 0.0))

let test_leakage_vt_dominates_negatively () =
  let m = Powergrid.Leakage.default in
  let high_vt = Powergrid.Leakage.current m ~params:[| 0.0; 0.0; 2.0; 0.0 |] in
  let low_vt = Powergrid.Leakage.current m ~params:[| 0.0; 0.0; -2.0; 0.0 |] in
  Alcotest.(check bool) "low vt leaks much more" true (low_vt > 10.0 *. high_vt)

let test_leakage_lognormal_mean () =
  (* sampled mean converges to the analytic lognormal mean *)
  let m = Powergrid.Leakage.default in
  let rng = Prng.Rng.create ~seed:7 in
  let acc = Stats.Welford.create () in
  for _ = 1 to 200_000 do
    let params = Prng.Gaussian.vector rng 4 in
    Stats.Welford.add acc (Powergrid.Leakage.current m ~params)
  done;
  let expected = Powergrid.Leakage.mean_current m in
  let got = Stats.Welford.mean acc in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.3e vs analytic %.3e" got expected)
    true
    (Float.abs (got -. expected) /. expected < 0.03)

let test_leakage_blocks_row () =
  let m = Powergrid.Leakage.default in
  let blocks =
    Array.init 4 (fun k -> Linalg.Mat.init 2 3 (fun s g -> float_of_int ((s + k + g) mod 2)))
  in
  let row = Powergrid.Leakage.currents_of_blocks m ~blocks ~sample:1 in
  Alcotest.(check int) "gate count" 3 (Array.length row);
  (* spot check gate 0 of sample 1 against the scalar model *)
  let params = Array.init 4 (fun k -> Linalg.Mat.get blocks.(k) 1 0) in
  check_close ~tol:1e-18 "matches scalar" (Powergrid.Leakage.current m ~params) row.(0)

(* ---------- Analysis ---------- *)

let analysis_fixture =
  lazy
    (let netlist =
       Circuit.Generator.generate
         { Circuit.Generator.name = "pg"; n_gates = 150; n_inputs = 10;
           n_outputs = 5; dff_fraction = 0.0; seed = 3 }
     in
     let setup = Ssta.Experiment.setup_circuit netlist in
     let proc = Ssta.Process.paper_default () in
     (setup, proc, Powergrid.Grid.create ~nodes_per_side:10 die))

let test_analysis_deterministic () =
  let setup, proc, grid = Lazy.force analysis_fixture in
  let a1 = Ssta.Algorithm1.prepare proc setup.Ssta.Experiment.locations in
  let run () =
    Powergrid.Analysis.run ~grid ~leakage:Powergrid.Leakage.default
      ~gate_locations:setup.Ssta.Experiment.locations
      ~sampler:(Ssta.Algorithm1.sample_block a1) ~seed:5 ~n:100 ()
  in
  let r1 = run () and r2 = run () in
  check_close ~tol:0.0 "mean" r1.Powergrid.Analysis.max_drop_mean
    r2.Powergrid.Analysis.max_drop_mean

let test_analysis_algorithms_agree () =
  let setup, proc, grid = Lazy.force analysis_fixture in
  let a1 = Ssta.Algorithm1.prepare proc setup.Ssta.Experiment.locations in
  let a2 =
    Ssta.Algorithm2.prepare
      ~config:
        { Ssta.Algorithm2.max_area_fraction = 0.004; min_angle_deg = 28.0;
          computed_pairs = 80; r = Some 25; mode = Kle.Galerkin.Auto }
      proc setup.Ssta.Experiment.locations
  in
  let run sampler seed =
    Powergrid.Analysis.run ~grid ~leakage:Powergrid.Leakage.default
      ~gate_locations:setup.Ssta.Experiment.locations ~sampler ~seed ~n:2000 ()
  in
  let r1 = run (Ssta.Algorithm1.sample_block a1) 11 in
  let r2 = run (Ssta.Algorithm2.sample_block a2) 12 in
  let rel a b = Float.abs (a -. b) /. b in
  Alcotest.(check bool)
    (Printf.sprintf "mean agree (%.2e vs %.2e)" r2.Powergrid.Analysis.max_drop_mean
       r1.Powergrid.Analysis.max_drop_mean)
    true
    (rel r2.Powergrid.Analysis.max_drop_mean r1.Powergrid.Analysis.max_drop_mean < 0.05);
  Alcotest.(check bool)
    (Printf.sprintf "sigma agree (%.2e vs %.2e)" r2.Powergrid.Analysis.max_drop_sigma
       r1.Powergrid.Analysis.max_drop_sigma)
    true
    (rel r2.Powergrid.Analysis.max_drop_sigma r1.Powergrid.Analysis.max_drop_sigma < 0.25)

let test_analysis_p99_exceeds_mean () =
  let setup, proc, grid = Lazy.force analysis_fixture in
  let a1 = Ssta.Algorithm1.prepare proc setup.Ssta.Experiment.locations in
  let r =
    Powergrid.Analysis.run ~grid ~leakage:Powergrid.Leakage.default
      ~gate_locations:setup.Ssta.Experiment.locations
      ~sampler:(Ssta.Algorithm1.sample_block a1) ~seed:5 ~n:500 ()
  in
  Alcotest.(check bool) "p99 > mean" true
    (r.Powergrid.Analysis.max_drop_p99 > r.Powergrid.Analysis.max_drop_mean);
  Alcotest.(check bool) "positive" true (r.Powergrid.Analysis.max_drop_mean > 0.0)

let () =
  Alcotest.run "powergrid"
    [
      ( "grid",
        [
          Alcotest.test_case "node counts" `Quick test_grid_counts;
          Alcotest.test_case "tiny grid hand-computed" `Quick test_grid_tiny_hand_computed;
          Alcotest.test_case "superposition" `Quick test_grid_superposition;
          Alcotest.test_case "drops positive and scale" `Quick test_grid_drop_positive_and_monotone;
          Alcotest.test_case "hot spot away from pads" `Quick test_grid_center_drop_largest_under_uniform_load;
          Alcotest.test_case "nearest node" `Quick test_grid_nearest_node;
          Alcotest.test_case "length mismatch" `Quick test_grid_solve_length_mismatch;
          Alcotest.test_case "dense and CG backends agree" `Quick test_grid_solvers_agree;
        ] );
      ( "leakage",
        [
          Alcotest.test_case "nominal" `Quick test_leakage_nominal;
          Alcotest.test_case "Vt dominates negatively" `Quick test_leakage_vt_dominates_negatively;
          Alcotest.test_case "lognormal mean" `Quick test_leakage_lognormal_mean;
          Alcotest.test_case "block row extraction" `Quick test_leakage_blocks_row;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "deterministic" `Quick test_analysis_deterministic;
          Alcotest.test_case "algorithms agree" `Slow test_analysis_algorithms_agree;
          Alcotest.test_case "p99 exceeds mean" `Quick test_analysis_p99_exceeds_mean;
        ] );
    ]
