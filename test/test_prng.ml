let check_close ?(tol = 1e-10) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

(* ---------- Rng ---------- *)

let test_determinism () =
  let a = Prng.Rng.create ~seed:42 and b = Prng.Rng.create ~seed:42 in
  for _ = 1 to 100 do
    check_close ~tol:0.0 "same stream" (Prng.Rng.uniform a) (Prng.Rng.uniform b)
  done

let test_seed_sensitivity () =
  let a = Prng.Rng.create ~seed:1 and b = Prng.Rng.create ~seed:2 in
  let va = Array.init 10 (fun _ -> Prng.Rng.uniform a) in
  let vb = Array.init 10 (fun _ -> Prng.Rng.uniform b) in
  Alcotest.(check bool) "different streams" true (va <> vb)

let test_uniform_range_bounds () =
  let rng = Prng.Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Prng.Rng.uniform rng in
    Alcotest.(check bool) "[0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_uniform_moments () =
  let rng = Prng.Rng.create ~seed:11 in
  let n = 100_000 in
  let acc = ref 0.0 and acc2 = ref 0.0 in
  for _ = 1 to n do
    let v = Prng.Rng.uniform rng in
    acc := !acc +. v;
    acc2 := !acc2 +. (v *. v)
  done;
  let mean = !acc /. float_of_int n in
  let var = (!acc2 /. float_of_int n) -. (mean *. mean) in
  check_close ~tol:0.01 "mean 1/2" 0.5 mean;
  check_close ~tol:0.01 "var 1/12" (1.0 /. 12.0) var

let test_uniform_bins_chi2 () =
  (* 10 equal bins over 100k draws: chi2(9) should stay below ~30 *)
  let rng = Prng.Rng.create ~seed:13 in
  let bins = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Prng.Rng.uniform rng in
    let b = min 9 (int_of_float (v *. 10.0)) in
    bins.(b) <- bins.(b) + 1
  done;
  let expected = float_of_int n /. 10.0 in
  let chi2 =
    Array.fold_left
      (fun acc c ->
        let d = float_of_int c -. expected in
        acc +. (d *. d /. expected))
      0.0 bins
  in
  Alcotest.(check bool) (Printf.sprintf "chi2 = %.2f < 30" chi2) true (chi2 < 30.0)

let test_int_below_range_and_coverage () =
  let rng = Prng.Rng.create ~seed:17 in
  let seen = Array.make 7 false in
  for _ = 1 to 1000 do
    let v = Prng.Rng.int_below rng 7 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 7);
    seen.(v) <- true
  done;
  Alcotest.(check bool) "all values seen" true (Array.for_all Fun.id seen)

let test_int_below_invalid () =
  let rng = Prng.Rng.create ~seed:1 in
  Alcotest.check_raises "n=0" (Invalid_argument "Rng.int_below: requires n > 0")
    (fun () -> ignore (Prng.Rng.int_below rng 0))

let test_uniform_range () =
  let rng = Prng.Rng.create ~seed:19 in
  for _ = 1 to 100 do
    let v = Prng.Rng.uniform_range rng ~lo:(-3.0) ~hi:2.0 in
    Alcotest.(check bool) "in range" true (v >= -3.0 && v < 2.0)
  done;
  Alcotest.check_raises "bad range" (Invalid_argument "Rng.uniform_range: requires lo < hi")
    (fun () -> ignore (Prng.Rng.uniform_range rng ~lo:1.0 ~hi:1.0))

let test_split_independence () =
  let a = Prng.Rng.create ~seed:23 in
  let b = Prng.Rng.split a in
  let va = Array.init 20 (fun _ -> Prng.Rng.uniform a) in
  let vb = Array.init 20 (fun _ -> Prng.Rng.uniform b) in
  Alcotest.(check bool) "streams differ" true (va <> vb)

let test_copy_snapshot () =
  let a = Prng.Rng.create ~seed:29 in
  ignore (Prng.Rng.uniform a);
  let b = Prng.Rng.copy a in
  check_close ~tol:0.0 "same next" (Prng.Rng.uniform a) (Prng.Rng.uniform b)

let test_shuffle_permutation () =
  let rng = Prng.Rng.create ~seed:31 in
  let a = Array.init 50 (fun i -> i) in
  Prng.Rng.shuffle_in_place rng a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

(* ---------- Gaussian ---------- *)

let test_gaussian_moments () =
  let rng = Prng.Rng.create ~seed:37 in
  let n = 200_000 in
  let acc = ref 0.0 and acc2 = ref 0.0 and acc3 = ref 0.0 and acc4 = ref 0.0 in
  for _ = 1 to n do
    let v = Prng.Gaussian.draw rng in
    acc := !acc +. v;
    acc2 := !acc2 +. (v *. v);
    acc3 := !acc3 +. (v *. v *. v);
    acc4 := !acc4 +. (v *. v *. v *. v)
  done;
  let nf = float_of_int n in
  check_close ~tol:0.02 "mean 0" 0.0 (!acc /. nf);
  check_close ~tol:0.03 "variance 1" 1.0 (!acc2 /. nf);
  check_close ~tol:0.05 "skew 0" 0.0 (!acc3 /. nf);
  check_close ~tol:0.1 "kurtosis 3" 3.0 (!acc4 /. nf)

let test_gaussian_tail_fraction () =
  (* P(|X| > 1.96) ~ 0.05 *)
  let rng = Prng.Rng.create ~seed:41 in
  let n = 100_000 in
  let count = ref 0 in
  for _ = 1 to n do
    if Float.abs (Prng.Gaussian.draw rng) > 1.96 then incr count
  done;
  check_close ~tol:0.005 "tail mass" 0.05 (float_of_int !count /. float_of_int n)

let test_gaussian_fill_matches_vector () =
  let a = Prng.Rng.create ~seed:43 and b = Prng.Rng.create ~seed:43 in
  let v1 = Prng.Gaussian.vector a 17 in
  let v2 = Array.make 17 0.0 in
  Prng.Gaussian.fill b v2;
  Alcotest.(check (array (float 0.0))) "same" v1 v2

let test_gaussian_matrix_shape () =
  let rng = Prng.Rng.create ~seed:47 in
  let m = Prng.Gaussian.matrix rng ~rows:5 ~cols:9 in
  Alcotest.(check int) "rows" 5 (Linalg.Mat.rows m);
  Alcotest.(check int) "cols" 9 (Linalg.Mat.cols m)

(* ---------- Mvn ---------- *)

let test_mvn_covariance_recovery () =
  (* target 3x3 covariance; check the sample covariance converges to it *)
  let k =
    Linalg.Mat.of_arrays
      [| [| 1.0; 0.6; 0.2 |]; [| 0.6; 1.0; 0.5 |]; [| 0.2; 0.5; 1.0 |] |]
  in
  let mvn = Prng.Mvn.of_covariance k in
  let rng = Prng.Rng.create ~seed:53 in
  let n = 50_000 in
  let samples = Prng.Mvn.sample_matrix mvn rng ~n in
  let cov = Stats.Correlation.column_covariance samples in
  Alcotest.(check bool) "covariance close" true (Linalg.Mat.max_abs_diff k cov < 0.03)

let test_mvn_jitter_reporting () =
  let ones = Linalg.Mat.init 5 5 (fun _ _ -> 1.0) in
  let mvn = Prng.Mvn.of_covariance ones in
  Alcotest.(check bool) "jitter > 0 on singular" true (Prng.Mvn.jitter_used mvn > 0.0);
  let spd = Linalg.Mat.identity 5 in
  Alcotest.(check bool) "no jitter on identity" true
    (Prng.Mvn.jitter_used (Prng.Mvn.of_covariance spd) = 0.0)

let test_mvn_identity_gives_iid () =
  let mvn = Prng.Mvn.of_covariance (Linalg.Mat.identity 4) in
  let rng = Prng.Rng.create ~seed:59 in
  let s = Prng.Mvn.sample mvn rng in
  Alcotest.(check int) "dim" 4 (Array.length s);
  Alcotest.(check int) "dim accessor" 4 (Prng.Mvn.dim mvn)

let test_mvn_fallback_chain () =
  let diag = Util.Diag.create () in
  let exact = Prng.Mvn.of_covariance ~diag (Linalg.Mat.identity 4) in
  Alcotest.(check bool) "exact repair" true (Prng.Mvn.repair_used exact = Prng.Mvn.Exact);
  Alcotest.(check bool) "exact not degraded" false (Prng.Mvn.degraded exact);
  Alcotest.(check int) "no events for exact" 0 (Util.Diag.length diag);
  (* rank-1 positive semidefinite: plain Cholesky fails, jitter rescues *)
  let ones = Linalg.Mat.init 5 5 (fun _ _ -> 1.0) in
  let jit = Prng.Mvn.of_covariance ~diag ones in
  (match Prng.Mvn.repair_used jit with
  | Prng.Mvn.Jittered j -> Alcotest.(check bool) "jitter positive" true (j > 0.0)
  | _ -> Alcotest.fail "expected Jittered repair");
  Alcotest.(check bool) "degraded" true (Prng.Mvn.degraded jit);
  Alcotest.(check bool) "degradation recorded" true
    (Util.Diag.count ~code:`Degraded_fallback diag > 0)

let test_mvn_psd_repair_indefinite () =
  let diag = Util.Diag.create () in
  (* eigenvalues 3 and -1: genuinely indefinite, beyond any jitter *)
  let a = Linalg.Mat.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 1.0 |] |] in
  let mvn = Prng.Mvn.of_covariance ~diag a in
  (match Prng.Mvn.repair_used mvn with
  | Prng.Mvn.Eig_clipped { clipped; min_eigenvalue; _ } ->
      Alcotest.(check int) "one clipped eigenvalue" 1 clipped;
      check_close ~tol:1e-9 "most negative eigenvalue" (-1.0) min_eigenvalue
  | _ -> Alcotest.fail "expected Eig_clipped repair");
  Alcotest.(check bool) "not-psd recorded" true (Util.Diag.count ~code:`Not_psd diag > 0);
  Alcotest.(check bool) "fallback recorded" true
    (Util.Diag.count ~code:`Degraded_fallback diag > 0);
  (* the repaired sampler targets the clipped projection
     Q diag(3, 0) Qᵀ = [[1.5, 1.5], [1.5, 1.5]] *)
  let rng = Prng.Rng.create ~seed:61 in
  let cov =
    Stats.Correlation.column_covariance (Prng.Mvn.sample_matrix mvn rng ~n:50_000)
  in
  let expected = Linalg.Mat.of_arrays [| [| 1.5; 1.5 |]; [| 1.5; 1.5 |] |] in
  Alcotest.(check bool) "covariance of repaired target" true
    (Linalg.Mat.max_abs_diff expected cov < 0.05)

let test_mvn_rank_deficient_recovers () =
  (* rank-2 PSD 5x5 from two outer products; sampling must still work and
     reproduce the singular target closely *)
  let u = [| 1.0; -1.0; 2.0; 0.0; 0.5 |] and v = [| 0.0; 1.0; 1.0; -1.0; 2.0 |] in
  let a = Linalg.Mat.init 5 5 (fun i j -> (u.(i) *. u.(j)) +. (v.(i) *. v.(j))) in
  let diag = Util.Diag.create () in
  let mvn = Prng.Mvn.of_covariance ~diag a in
  Alcotest.(check bool) "degraded on rank-deficient" true (Prng.Mvn.degraded mvn);
  let rng = Prng.Rng.create ~seed:67 in
  let cov =
    Stats.Correlation.column_covariance (Prng.Mvn.sample_matrix mvn rng ~n:50_000)
  in
  Alcotest.(check bool) "covariance recovered" true (Linalg.Mat.max_abs_diff a cov < 0.15)

let test_mvn_non_finite_rejected () =
  let a = Linalg.Mat.of_arrays [| [| 1.0; Float.nan |]; [| Float.nan; 1.0 |] |] in
  Alcotest.(check bool) "raises typed failure" true
    (match Prng.Mvn.of_covariance a with
    | _ -> false
    | exception Util.Diag.Failure e -> e.Util.Diag.code = `Non_finite)

(* ---------- Lowdisc (Halton QMC) ---------- *)

let test_primes () =
  Alcotest.(check (array int)) "first 8" [| 2; 3; 5; 7; 11; 13; 17; 19 |]
    (Prng.Lowdisc.primes 8)

let test_halton_unit_interval () =
  let seq = Prng.Lowdisc.create ~dim:5 () in
  for _ = 1 to 500 do
    Array.iter
      (fun v -> Alcotest.(check bool) "[0,1)" true (v >= 0.0 && v < 1.0))
      (Prng.Lowdisc.next_uniform seq)
  done

let test_halton_known_prefix () =
  (* base-2 van der Corput: 1/2, 1/4, 3/4, 1/8, ... *)
  let seq = Prng.Lowdisc.create ~dim:1 () in
  List.iter
    (fun expected ->
      check_close ~tol:1e-14 "vdc" expected (Prng.Lowdisc.next_uniform seq).(0))
    [ 0.5; 0.25; 0.75; 0.125; 0.625 ]

let test_halton_stratification_beats_random () =
  (* 1-D discrepancy proxy: max gap between sorted points; Halton gaps are
     near-uniform, random gaps have a long tail *)
  let n = 512 in
  let max_gap pts =
    let a = Array.copy pts in
    Array.sort Float.compare a;
    let g = ref a.(0) in
    for i = 1 to n - 1 do
      g := Float.max !g (a.(i) -. a.(i - 1))
    done;
    Float.max !g (1.0 -. a.(n - 1))
  in
  let seq = Prng.Lowdisc.create ~dim:1 () in
  let halton = Array.init n (fun _ -> (Prng.Lowdisc.next_uniform seq).(0)) in
  let rng = Prng.Rng.create ~seed:4 in
  let random = Array.init n (fun _ -> Prng.Rng.uniform rng) in
  Alcotest.(check bool)
    (Printf.sprintf "halton gap %.4f < random gap %.4f" (max_gap halton) (max_gap random))
    true
    (max_gap halton < max_gap random)

let test_halton_shift_randomizes () =
  let a = Prng.Lowdisc.create ~shift_rng:(Prng.Rng.create ~seed:1) ~dim:3 () in
  let b = Prng.Lowdisc.create ~shift_rng:(Prng.Rng.create ~seed:2) ~dim:3 () in
  Alcotest.(check bool) "different shifts differ" true
    (Prng.Lowdisc.next_uniform a <> Prng.Lowdisc.next_uniform b)

let test_halton_normal_moments () =
  let seq = Prng.Lowdisc.create ~dim:2 () in
  let n = 4000 in
  let acc = Stats.Welford.create () in
  for _ = 1 to n do
    Stats.Welford.add acc (Prng.Lowdisc.next_normal seq).(0)
  done;
  check_close ~tol:0.02 "mean" 0.0 (Stats.Welford.mean acc);
  check_close ~tol:0.03 "std" 1.0 (Stats.Welford.std_dev acc)

let test_halton_matrix_shape () =
  let seq = Prng.Lowdisc.create ~dim:7 () in
  let m = Prng.Lowdisc.normal_matrix seq ~rows:11 in
  Alcotest.(check int) "rows" 11 (Linalg.Mat.rows m);
  Alcotest.(check int) "cols" 7 (Linalg.Mat.cols m)

let test_halton_dim_bounds () =
  Alcotest.(check bool) "dim 0 raises" true
    (match Prng.Lowdisc.create ~dim:0 () with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ---------- qcheck ---------- *)

let prop_int_below_in_range =
  QCheck.Test.make ~name:"int_below stays in range" ~count:200
    (QCheck.pair (QCheck.int_range 1 1000) (QCheck.int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Prng.Rng.create ~seed in
      let v = Prng.Rng.int_below rng n in
      v >= 0 && v < n)

let prop_uniform_in_unit =
  QCheck.Test.make ~name:"uniform in [0,1)" ~count:200 (QCheck.int_range 0 100_000)
    (fun seed ->
      let rng = Prng.Rng.create ~seed in
      let v = Prng.Rng.uniform rng in
      v >= 0.0 && v < 1.0)

let () =
  Alcotest.run "prng"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic per seed" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "uniform bounds" `Quick test_uniform_range_bounds;
          Alcotest.test_case "uniform moments" `Quick test_uniform_moments;
          Alcotest.test_case "uniform chi-square" `Quick test_uniform_bins_chi2;
          Alcotest.test_case "int_below coverage" `Quick test_int_below_range_and_coverage;
          Alcotest.test_case "int_below invalid" `Quick test_int_below_invalid;
          Alcotest.test_case "uniform_range" `Quick test_uniform_range;
          Alcotest.test_case "split independence" `Quick test_split_independence;
          Alcotest.test_case "copy snapshots state" `Quick test_copy_snapshot;
          Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
        ] );
      ( "gaussian",
        [
          Alcotest.test_case "first four moments" `Quick test_gaussian_moments;
          Alcotest.test_case "tail fraction at 1.96" `Quick test_gaussian_tail_fraction;
          Alcotest.test_case "fill matches vector" `Quick test_gaussian_fill_matches_vector;
          Alcotest.test_case "matrix shape" `Quick test_gaussian_matrix_shape;
        ] );
      ( "mvn",
        [
          Alcotest.test_case "recovers target covariance" `Quick test_mvn_covariance_recovery;
          Alcotest.test_case "jitter reporting" `Quick test_mvn_jitter_reporting;
          Alcotest.test_case "identity covariance" `Quick test_mvn_identity_gives_iid;
          Alcotest.test_case "fallback chain reporting" `Quick test_mvn_fallback_chain;
          Alcotest.test_case "PSD repair of indefinite input" `Quick
            test_mvn_psd_repair_indefinite;
          Alcotest.test_case "rank-deficient covariance recovers" `Quick
            test_mvn_rank_deficient_recovers;
          Alcotest.test_case "non-finite covariance rejected" `Quick
            test_mvn_non_finite_rejected;
        ] );
      ( "lowdisc",
        [
          Alcotest.test_case "primes" `Quick test_primes;
          Alcotest.test_case "points in unit cube" `Quick test_halton_unit_interval;
          Alcotest.test_case "van der Corput prefix" `Quick test_halton_known_prefix;
          Alcotest.test_case "stratification beats random" `Quick test_halton_stratification_beats_random;
          Alcotest.test_case "random shifts differ" `Quick test_halton_shift_randomizes;
          Alcotest.test_case "normal transform moments" `Quick test_halton_normal_moments;
          Alcotest.test_case "matrix shape" `Quick test_halton_matrix_shape;
          Alcotest.test_case "dimension bounds" `Quick test_halton_dim_bounds;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_int_below_in_range; prop_uniform_in_unit ]
      );
    ]
