(* Serving layer: JSON reader/writer, protocol decode (every typed error
   code), the LRU hot tier, and the concurrent server end-to-end —
   including the satellite contract that Bench_format parse errors surface
   as typed [netlist_error] protocol errors. *)

module Jsonx = Serve.Jsonx
module Protocol = Serve.Protocol
module Lru = Serve.Lru
module Server = Serve.Server

(* ---------- jsonx ---------- *)

let parse_ok s =
  match Jsonx.parse s with
  | Ok v -> v
  | Error msg -> Alcotest.failf "parse %S failed: %s" s msg

let test_jsonx_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (Jsonx.to_string (parse_ok s)))
    [
      "null"; "true"; "false"; "0"; "-7"; "123456789"; "1.5"; "-0.25";
      "\"\""; "\"abc\""; "[]"; "[1,2,3]"; "{}";
      {|{"a":1,"b":[true,null],"c":{"d":"e"}}|};
    ]

let test_jsonx_escapes () =
  Alcotest.(check (option string)) "basic escapes" (Some "a\"b\\c/\n\t\r\b\012")
    (Jsonx.as_str (parse_ok {|"a\"b\\c\/\n\t\r\b\f"|}));
  Alcotest.(check (option string)) "bmp escape" (Some "\xe2\x82\xac")
    (Jsonx.as_str (parse_ok {|"\u20ac"|}));
  Alcotest.(check (option string)) "surrogate pair" (Some "\xf0\x9d\x84\x9e")
    (Jsonx.as_str (parse_ok {|"\ud834\udd1e"|}));
  (* output escapes control characters and quotes back to parseable form *)
  let s = "line1\nline2\t\"q\"" in
  Alcotest.(check (option string)) "escape roundtrip" (Some s)
    (Jsonx.as_str (parse_ok (Jsonx.to_string (Jsonx.Str s))))

let test_jsonx_numbers () =
  Alcotest.(check (option int)) "int" (Some 42) (Jsonx.as_int (parse_ok "42"));
  Alcotest.(check (option int)) "exp" (Some 1200) (Jsonx.as_int (parse_ok "1.2e3"));
  Alcotest.(check (option int)) "not integral" None (Jsonx.as_int (parse_ok "1.5"));
  Alcotest.(check string) "integral prints as int" "7" (Jsonx.to_string (Jsonx.Num 7.0));
  Alcotest.(check string) "fraction keeps point" "0.5" (Jsonx.to_string (Jsonx.Num 0.5));
  Alcotest.(check string) "nan is null" "null" (Jsonx.to_string (Jsonx.Num Float.nan))

let test_jsonx_errors () =
  List.iter
    (fun s ->
      match Jsonx.parse s with
      | Ok v -> Alcotest.failf "parse %S should fail, got %s" s (Jsonx.to_string v)
      | Error _ -> ())
    [
      ""; "{"; "["; "tru"; "nul"; "{\"a\"}"; "{\"a\":}"; "[1,]"; "{,}"; "\"unterminated";
      "\"bad \\x escape\""; "+1"; "1 2"; "{\"a\":1} trailing"; "\"\\ud834\"";
    ]

let test_jsonx_member () =
  let v = parse_ok {|{"a":1,"b":"x"}|} in
  Alcotest.(check (option int)) "a" (Some 1) (Option.bind (Jsonx.member "a" v) Jsonx.as_int);
  Alcotest.(check bool) "missing" true (Jsonx.member "zz" v = None);
  Alcotest.(check bool) "non-object" true (Jsonx.member "a" (Jsonx.Num 1.0) = None)

(* ---------- protocol ---------- *)

let decode_err line =
  match Protocol.decode line with
  | Ok _ -> Alcotest.failf "decode %S should fail" line
  | Error (id, code, msg) -> (id, code, msg)

let test_protocol_decode_ok () =
  (match Protocol.decode {|{"id":1,"method":"stats"}|} with
  | Ok { id = Jsonx.Num 1.0; deadline_ms = None; call = Protocol.Stats } -> ()
  | _ -> Alcotest.fail "stats decode");
  (match
     Protocol.decode
       {|{"id":"x","deadline_ms":250,"method":"run_mc","params":{"circuit":{"name":"c17"},"sampler":"kle-qmc","n":100,"seed":7,"r":12,"batch":64}}|}
   with
  | Ok
      {
        id = Jsonx.Str "x";
        deadline_ms = Some 250.0;
        call =
          Protocol.Run_mc
            { circuit = Protocol.Named "c17"; sampler = Protocol.Kle_qmc;
              r = Some 12; seed = 7; n = 100; batch = Some 64 };
      } -> ()
  | _ -> Alcotest.fail "run_mc decode");
  (match
     Protocol.decode {|{"id":2,"method":"prepare","params":{"circuit":{"bench":"INPUT(a)\n"}}}|}
   with
  | Ok { call = Protocol.Prepare { circuit = Protocol.Bench_text _; r = None }; _ } -> ()
  | _ -> Alcotest.fail "prepare bench decode")

let test_protocol_decode_errors () =
  let check_code line expected =
    let _, code, _ = decode_err line in
    Alcotest.(check string) line
      (Protocol.error_code_name expected)
      (Protocol.error_code_name code)
  in
  check_code "{not json" Protocol.Parse_error;
  check_code "[1,2]" Protocol.Invalid_request;
  check_code "\"hi\"" Protocol.Invalid_request;
  check_code {|{"id":1}|} Protocol.Invalid_request;
  check_code {|{"id":1,"method":"frobnicate"}|} Protocol.Unknown_method;
  check_code {|{"id":1,"method":"run_mc"}|} Protocol.Bad_params;
  check_code {|{"id":1,"method":"run_mc","params":{"circuit":{"name":"c17"}}}|} Protocol.Bad_params;
  check_code {|{"id":1,"method":"run_mc","params":{"circuit":{"name":"c17"},"n":0}}|}
    Protocol.Bad_params;
  check_code {|{"id":1,"method":"run_mc","params":{"circuit":{"name":"c17"},"n":10,"sampler":"bogus"}}|}
    Protocol.Bad_params;
  check_code {|{"id":1,"method":"prepare","params":{}}|} Protocol.Bad_params;
  check_code {|{"id":1,"deadline_ms":-5,"method":"stats"}|} Protocol.Bad_params;
  (* the id is still recovered for correlation whenever the line parses *)
  let id, _, _ = decode_err {|{"id":77,"method":"frobnicate"}|} in
  Alcotest.(check (option int)) "id recovered" (Some 77) (Jsonx.as_int id);
  let id, _, _ = decode_err "{not json" in
  Alcotest.(check bool) "unparseable id is null" true (id = Jsonx.Null)

let test_protocol_responses () =
  let ok = Protocol.ok_response ~id:(Jsonx.Num 3.0) (Jsonx.Obj [ ("x", Jsonx.Num 1.0) ]) in
  Alcotest.(check string) "ok" {|{"id":3,"ok":{"x":1}}|} ok;
  let err = Protocol.error_response ~id:(Jsonx.Str "a") Protocol.Overloaded "queue full" in
  Alcotest.(check string) "error"
    {|{"id":"a","error":{"code":"overloaded","message":"queue full"}}|} err;
  Alcotest.(check bool) "response_id" true
    (Protocol.response_id ok = Some (Jsonx.Num 3.0))

(* ---------- lru ---------- *)

let test_lru_eviction_order () =
  let c = Lru.create ~capacity:2 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  (* touch a so b is the oldest *)
  Alcotest.(check (option int)) "find a" (Some 1) (Lru.find c "a");
  Lru.add c "c" 3;
  Alcotest.(check (option int)) "b evicted" None (Lru.find c "b");
  Alcotest.(check (option int)) "a kept" (Some 1) (Lru.find c "a");
  Alcotest.(check (option int)) "c kept" (Some 3) (Lru.find c "c");
  Alcotest.(check int) "length" 2 (Lru.length c);
  let s = Lru.stats c in
  Alcotest.(check int) "evictions" 1 s.Lru.evictions;
  Alcotest.(check int) "misses" 1 s.Lru.misses

let test_lru_overwrite_and_remove () =
  let c = Lru.create ~capacity:2 in
  Lru.add c "a" 1;
  Lru.add c "a" 10;
  Alcotest.(check int) "overwrite keeps one entry" 1 (Lru.length c);
  Alcotest.(check (option int)) "new value" (Some 10) (Lru.find c "a");
  Lru.remove c "a";
  Alcotest.(check (option int)) "removed" None (Lru.find c "a");
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Lru.create: capacity < 1") (fun () ->
      ignore (Lru.create ~capacity:0 : int Lru.t))

let test_lru_recency_sequence () =
  (* exercises the intrusive recency list: overwrites refresh recency,
     removes unlink interior nodes, and every eviction takes the true LRU
     entry *)
  let c = Lru.create ~capacity:3 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Lru.add c "c" 3;
  (* recency c > b > a; overwriting a moves it to the front *)
  Lru.add c "a" 10;
  Lru.add c "d" 4;
  Alcotest.(check (option int)) "b was the LRU entry" None (Lru.find c "b");
  Alcotest.(check (option int)) "refreshed a survives" (Some 10) (Lru.find c "a");
  (* recency a > d > c; unlink the middle node, then refill *)
  Lru.remove c "d";
  Lru.add c "e" 5;
  Alcotest.(check int) "free slot reused without eviction" 3 (Lru.length c);
  Lru.add c "f" 6;
  Alcotest.(check (option int)) "c was the LRU entry" None (Lru.find c "c");
  Alcotest.(check (option int)) "e kept" (Some 5) (Lru.find c "e");
  Alcotest.(check (option int)) "a kept" (Some 10) (Lru.find c "a");
  Alcotest.(check int) "two evictions" 2 (Lru.stats c).Lru.evictions

let test_lru_matches_reference_model () =
  (* drive the cache and a naive most-recent-first assoc list through the
     same deterministic op sequence; they must agree at every step *)
  let cap = 4 in
  let c = Lru.create ~capacity:cap in
  let model = ref ([] : (string * int) list) in
  let m_remove k = model := List.filter (fun (k', _) -> not (String.equal k' k)) !model in
  for step = 0 to 999 do
    let k = "k" ^ string_of_int (step * 7 mod 6) in
    (match step * 13 mod 3 with
    | 0 ->
        Lru.add c k step;
        if not (List.mem_assoc k !model) && List.length !model >= cap then
          model := List.filteri (fun i _ -> i < cap - 1) !model;
        m_remove k;
        model := (k, step) :: !model
    | 1 ->
        let got = Lru.find c k in
        let expect = List.assoc_opt k !model in
        Alcotest.(check (option int)) (Printf.sprintf "find at step %d" step) expect got;
        (match expect with
        | Some v ->
            m_remove k;
            model := (k, v) :: !model
        | None -> ())
    | _ ->
        Lru.remove c k;
        m_remove k);
    Alcotest.(check int)
      (Printf.sprintf "length at step %d" step)
      (List.length !model) (Lru.length c)
  done;
  (* final state: every model entry is present with the model's value *)
  List.iter
    (fun (k, v) -> Alcotest.(check (option int)) ("final " ^ k) (Some v) (Lru.find c k))
    !model

(* ---------- server end-to-end ---------- *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec scan i = i + n <= m && (String.sub s i n = sub || scan (i + 1)) in
  n = 0 || scan 0

(* tiny inline netlist so server tests stay fast *)
let tiny_bench = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nx = NAND(a, b)\ny = NOT(x)\n"

let escape_bench s =
  String.concat "" (List.map (function '\n' -> "\\n" | c -> String.make 1 c)
      (List.init (String.length s) (String.get s)))

(* fast KLE config: coarse mesh, dense eigensolve *)
let test_config =
  {
    Server.default_config with
    Server.kle =
      { Ssta.Algorithm2.paper_config with Ssta.Algorithm2.max_area_fraction = 0.05 };
  }

(* synchronous call helper: submit and wait for the single reply *)
let sync_call server line =
  let m = Mutex.create () and c = Condition.create () in
  let slot = ref None in
  Server.submit server line ~reply:(fun r ->
      Mutex.protect m (fun () ->
          slot := Some r;
          Condition.signal c));
  Mutex.protect m (fun () ->
      while !slot = None do
        Condition.wait c m
      done;
      Option.get !slot)

let reply_json line =
  match Jsonx.parse line with
  | Ok v -> v
  | Error msg -> Alcotest.failf "reply not JSON: %s (%s)" line msg

let expect_error line expected =
  let v = reply_json line in
  match Option.bind (Jsonx.member "error" v) (Jsonx.member "code") with
  | Some (Jsonx.Str code) ->
      Alcotest.(check string) "error code" (Protocol.error_code_name expected) code;
      Option.value ~default:""
        (Option.bind
           (Option.bind (Jsonx.member "error" v) (Jsonx.member "message"))
           Jsonx.as_str)
  | _ -> Alcotest.failf "expected %s error, got %s" (Protocol.error_code_name expected) line

let expect_ok line =
  let v = reply_json line in
  match Jsonx.member "ok" v with
  | Some payload -> payload
  | None -> Alcotest.failf "expected ok, got %s" line

let with_server ?(config = test_config) f =
  let server = Server.create config in
  Fun.protect ~finally:(fun () -> Server.drain server) (fun () -> f server)

let run_mc_line ?(id = 1) ?(sampler = "cholesky") ?(n = 32) () =
  Printf.sprintf
    {|{"id":%d,"method":"run_mc","params":{"circuit":{"bench":"%s"},"sampler":"%s","n":%d,"seed":3}}|}
    id (escape_bench tiny_bench) sampler n

let float_exact =
  Alcotest.testable
    (fun ppf v -> Format.fprintf ppf "%h" v)
    (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b)

let test_server_run_mc_ok () =
  with_server @@ fun server ->
  let payload = expect_ok (sync_call server (run_mc_line ())) in
  Alcotest.(check (option int)) "n_samples" (Some 32)
    (Option.bind (Jsonx.member "n_samples" payload) Jsonx.as_int);
  (match Option.bind (Jsonx.member "worst_mean" payload) Jsonx.as_num with
  | Some m when Float.is_finite m && m > 0.0 -> ()
  | _ -> Alcotest.fail "finite positive worst_mean expected");
  (* the reply is deterministic: same request, same numbers (cache hit path) *)
  let payload2 = expect_ok (sync_call server (run_mc_line ())) in
  Alcotest.(check (option float_exact)) "deterministic worst_mean"
    (Option.bind (Jsonx.member "worst_mean" payload) Jsonx.as_num)
    (Option.bind (Jsonx.member "worst_mean" payload2) Jsonx.as_num)

let test_server_cache_tiers () =
  with_server @@ fun server ->
  let line =
    Printf.sprintf
      {|{"id":9,"method":"run_mc","params":{"circuit":{"bench":"%s"},"sampler":"kle","n":16,"seed":1}}|}
      (escape_bench tiny_bench)
  in
  let first = expect_ok (sync_call server line) in
  let tier j = Option.bind (Jsonx.member j first) Jsonx.as_str in
  Alcotest.(check (option string)) "first setup is a miss" (Some "miss")
    (tier "cache_setup");
  let second = expect_ok (sync_call server line) in
  Alcotest.(check (option string)) "second setup from memory" (Some "hit-mem")
    (Option.bind (Jsonx.member "cache_setup" second) Jsonx.as_str);
  Alcotest.(check (option string)) "second models from memory" (Some "hit-mem")
    (Option.bind (Jsonx.member "cache_models" second) Jsonx.as_str)

let test_server_typed_errors () =
  with_server @@ fun server ->
  ignore (expect_error (sync_call server "{nope") Protocol.Parse_error);
  ignore (expect_error (sync_call server {|{"id":1,"method":"warp"}|}) Protocol.Unknown_method);
  ignore
    (expect_error
       (sync_call server {|{"id":1,"method":"run_mc","params":{"circuit":{"name":"c17"}}}|})
       Protocol.Bad_params);
  let msg =
    expect_error
      (sync_call server
         {|{"id":1,"method":"run_mc","params":{"circuit":{"name":"no-such-circuit"},"n":8}}|})
      Protocol.Netlist_error
  in
  Alcotest.(check bool) "names the circuit" true (contains ~sub:"no-such-circuit" msg)

(* satellite contract: every Bench_format parse-error path maps to a typed
   [netlist_error] protocol error carrying the parser's message *)
let test_server_bench_errors_are_typed () =
  with_server @@ fun server ->
  let cases =
    [
      ("y = NOT(ghost)\n", "undefined signal \"ghost\"");
      ("x = NOT(y)\ny = NOT(x)\n", "combinational loop through");
      ("INPUT(a)\nINPUT(b)\ny = NOT(a, b)\n", "unsupported function NOT/2");
      ("INPUT(a)\ny = FROB(a)\n", "unsupported function FROB/1");
      ("INPUT(a)\ny = NOT a\n", "malformed gate definition");
      ("what is this line\n", "expected INPUT(..), OUTPUT(..) or assignment");
    ]
  in
  List.iter
    (fun (bench, expected_substr) ->
      let line =
        Printf.sprintf
          {|{"id":1,"method":"prepare","params":{"circuit":{"bench":"%s"}}}|} (escape_bench bench)
      in
      let msg = expect_error (sync_call server line) Protocol.Netlist_error in
      Alcotest.(check bool)
        (Printf.sprintf "%S carries %S (got %S)" bench expected_substr msg)
        true (contains ~sub:expected_substr msg))
    cases

let test_server_overload_backpressure () =
  let config = { test_config with Server.workers = 1; Server.queue_capacity = 1 } in
  let server = Server.create config in
  let m = Mutex.create () and c = Condition.create () in
  let replies = ref [] and expected = 6 in
  let reply r =
    Mutex.protect m (fun () ->
        replies := r :: !replies;
        Condition.signal c)
  in
  (* a burst: one request occupies the worker, one fits the queue, the rest
     must be rejected immediately with [overloaded] *)
  for i = 1 to expected do
    Server.submit server (run_mc_line ~id:i ~n:256 ()) ~reply
  done;
  Mutex.protect m (fun () ->
      while List.length !replies < expected do
        Condition.wait c m
      done);
  Server.drain server;
  let overloaded =
    List.length
      (List.filter
         (fun r ->
           match Option.bind (Jsonx.member "error" (reply_json r)) (Jsonx.member "code") with
           | Some (Jsonx.Str "overloaded") -> true
           | _ -> false)
         !replies)
  in
  Alcotest.(check bool)
    (Printf.sprintf "some of the burst rejected (got %d)" overloaded)
    true (overloaded >= 1);
  Alcotest.(check bool) "but not all" true (overloaded < expected)

let test_server_deadline_exceeded () =
  (* the deadline clock is Util.Trace.now_ns, which reads the raw monotonic
     clock: deadlines must fire even though tracing is disabled here *)
  Alcotest.(check bool) "tracing is off" false (Util.Trace.enabled ());
  let config = { test_config with Server.workers = 1 } in
  with_server ~config @@ fun server ->
  let m = Mutex.create () and c = Condition.create () in
  let replies = ref [] in
  let reply r =
    Mutex.protect m (fun () ->
        replies := r :: !replies;
        Condition.signal c)
  in
  (* occupy the single worker, then submit a request whose deadline expires
     while it waits in the queue *)
  Server.submit server (run_mc_line ~id:1 ~n:512 ()) ~reply;
  Server.submit server {|{"id":2,"deadline_ms":0.001,"method":"stats"}|} ~reply;
  Mutex.protect m (fun () ->
      while List.length !replies < 2 do
        Condition.wait c m
      done);
  let deadline_reply =
    List.find
      (fun r -> Protocol.response_id r = Some (Jsonx.Num 2.0))
      !replies
  in
  ignore (expect_error deadline_reply Protocol.Deadline_exceeded)

let test_server_shutdown_drains () =
  let server = Server.create test_config in
  let ok = expect_ok (sync_call server {|{"id":1,"method":"shutdown"}|}) in
  Alcotest.(check (option bool)) "shutdown acknowledged" (Some true)
    (Option.bind (Jsonx.member "shutting_down" ok) Jsonx.as_bool);
  Alcotest.(check bool) "shutdown flagged" true (Server.shutdown_requested server);
  (* the worker closes intake just after delivering the shutdown reply; a
     request racing that window may still be accepted (and completes under
     drain semantics), but intake must close shortly after *)
  let rec await_closed tries =
    if tries = 0 then Alcotest.fail "intake never closed after shutdown"
    else
      let reply = sync_call server {|{"id":2,"method":"stats"}|} in
      match Option.bind (Jsonx.member "error" (reply_json reply)) (Jsonx.member "code") with
      | Some (Jsonx.Str code) ->
          Alcotest.(check string) "error code"
            (Protocol.error_code_name Protocol.Shutting_down) code
      | _ ->
          Thread.delay 0.01;
          await_closed (tries - 1)
  in
  await_closed 100;
  Server.drain server;
  (* drain is idempotent *)
  Server.drain server

let test_server_stats_payload () =
  with_server @@ fun server ->
  ignore (expect_ok (sync_call server (run_mc_line ())));
  let stats = expect_ok (sync_call server {|{"id":5,"method":"stats"}|}) in
  let int_field f = Option.bind (Jsonx.member f stats) Jsonx.as_int in
  (match int_field "requests" with
  | Some n when n >= 1 -> ()
  | _ -> Alcotest.fail "requests counter");
  Alcotest.(check (option int)) "no rejects" (Some 0) (int_field "rejected");
  Alcotest.(check bool) "lru stats present" true (Jsonx.member "lru" stats <> None);
  Alcotest.(check bool) "store absent without dir" true
    (match Jsonx.member "store" stats with Some Jsonx.Null | None -> true | _ -> false)

(* single-flight: workers racing the same cold key must compute it once.
   Four concurrent prepares of one circuit leave exactly two misses in the
   stats (circuit setup + KLE model) — without deduplication each racer
   would pay its own eigensolve and the miss counter would exceed that. *)
let test_server_single_flight () =
  let config = { test_config with Server.workers = 4 } in
  with_server ~config @@ fun server ->
  let m = Mutex.create () and c = Condition.create () in
  let replies = ref [] and expected = 4 in
  let reply r =
    Mutex.protect m (fun () ->
        replies := r :: !replies;
        Condition.signal c)
  in
  let line =
    Printf.sprintf {|{"id":1,"method":"prepare","params":{"circuit":{"bench":"%s"}}}|}
      (escape_bench tiny_bench)
  in
  for _ = 1 to expected do
    Server.submit server line ~reply
  done;
  Mutex.protect m (fun () ->
      while List.length !replies < expected do
        Condition.wait c m
      done);
  List.iter (fun r -> ignore (expect_ok r)) !replies;
  let stats = expect_ok (sync_call server {|{"id":2,"method":"stats"}|}) in
  Alcotest.(check (option int)) "one compute per key" (Some 2)
    (Option.bind (Jsonx.member "cache_misses" stats) Jsonx.as_int)

(* hierarchical mode: the cluster-tree + ACA factors are a cached artifact
   of their own, keyed by kernel + mesh + build params but NOT by the model
   truncation r — so re-preparing with a different r re-runs only the
   eigensolve, never the compression.  Miss arithmetic: the first prepare
   pays setup + model + factors (3), the second only a model (4 total). *)
let test_server_hierarchical_factor_reuse () =
  let config =
    {
      test_config with
      Server.kle =
        {
          test_config.Server.kle with
          Ssta.Algorithm2.mode = Kle.Galerkin.Hierarchical;
          Ssta.Algorithm2.computed_pairs = 12;
        };
    }
  in
  with_server ~config @@ fun server ->
  let prep id r =
    Printf.sprintf
      {|{"id":%d,"method":"prepare","params":{"circuit":{"bench":"%s"},"r":%d}}|}
      id (escape_bench tiny_bench) r
  in
  ignore (expect_ok (sync_call server (prep 1 4)));
  let misses () =
    Option.bind
      (Jsonx.member "cache_misses" (expect_ok (sync_call server {|{"id":9,"method":"stats"}|})))
      Jsonx.as_int
  in
  Alcotest.(check (option int)) "cold prepare: setup + model + factors" (Some 3)
    (misses ());
  ignore (expect_ok (sync_call server (prep 2 5)));
  Alcotest.(check (option int)) "new truncation recomputes only the model" (Some 4)
    (misses ())

(* a reply that raises (client disconnected mid-write) must not take down
   the worker domain: with a single worker, the next request only gets an
   answer if that worker survived the failed write *)
let test_server_reply_failure_survives () =
  let config = { test_config with Server.workers = 1 } in
  with_server ~config @@ fun server ->
  let m = Mutex.create () and c = Condition.create () in
  let fired = ref false in
  Server.submit server {|{"id":1,"method":"stats"}|} ~reply:(fun _ ->
      Mutex.protect m (fun () ->
          fired := true;
          Condition.signal c);
      raise (Sys_error "Broken pipe"));
  Mutex.protect m (fun () ->
      while not !fired do
        Condition.wait c m
      done);
  ignore (expect_ok (sync_call server {|{"id":2,"method":"stats"}|}));
  Alcotest.(check bool) "dropped reply recorded" true
    (Util.Diag.count ~code:`Degraded_fallback (Server.diagnostics server) >= 1)

(* ---------- supervision, health, chaos ---------- *)

let test_server_health_payload () =
  with_server @@ fun server ->
  let h = expect_ok (sync_call server {|{"id":1,"method":"health"}|}) in
  let int_field f = Option.bind (Jsonx.member f h) Jsonx.as_int in
  Alcotest.(check (option bool)) "healthy" (Some true)
    (Option.bind (Jsonx.member "healthy" h) Jsonx.as_bool);
  Alcotest.(check (option bool)) "not draining" (Some false)
    (Option.bind (Jsonx.member "draining" h) Jsonx.as_bool);
  Alcotest.(check (option int)) "workers" (Some test_config.Server.workers)
    (int_field "workers");
  Alcotest.(check (option int)) "no restarts" (Some 0) (int_field "worker_restarts");
  Alcotest.(check (option int)) "no quarantine" (Some 0) (int_field "quarantined");
  Alcotest.(check (option int)) "queue empty" (Some 0) (int_field "queue_depth");
  (* the probe itself occupies one worker while it is being answered *)
  Alcotest.(check (option int)) "busy = this request" (Some 1) (int_field "workers_busy");
  Alcotest.(check (option string)) "no store configured" (Some "none")
    (Option.bind (Jsonx.member "store" h) Jsonx.as_str)

(* a crashed worker restarts and the in-flight request is retried once:
   the client still sees a plain ok *)
let test_server_worker_restart_retries () =
  let config =
    {
      test_config with
      Server.workers = 1;
      chaos_crash = Some (Util.Fault.io_plan ~limit:1 Util.Fault.Crash);
    }
  in
  with_server ~config @@ fun server ->
  ignore (expect_ok (sync_call server (run_mc_line ())));
  Alcotest.(check int) "one restart" 1 (Server.worker_restarts server);
  Alcotest.(check int) "no quarantine" 0 (Server.quarantined server);
  let h = expect_ok (sync_call server {|{"id":2,"method":"health"}|}) in
  Alcotest.(check (option int)) "health reports the restart" (Some 1)
    (Option.bind (Jsonx.member "worker_restarts" h) Jsonx.as_int)

(* a poison request that kills a second worker is quarantined with a typed
   internal_error instead of crash-looping the pool *)
let test_server_poison_quarantine () =
  let config =
    {
      test_config with
      Server.workers = 1;
      chaos_crash = Some (Util.Fault.io_plan ~period:1 ~limit:2 Util.Fault.Crash);
    }
  in
  with_server ~config @@ fun server ->
  let msg = expect_error (sync_call server (run_mc_line ())) Protocol.Internal_error in
  Alcotest.(check bool) "names the quarantine" true (contains ~sub:"quarantined" msg);
  Alcotest.(check int) "one request quarantined" 1 (Server.quarantined server);
  Alcotest.(check int) "two restarts" 2 (Server.worker_restarts server);
  (* the pool survived: the next request is answered normally *)
  ignore (expect_ok (sync_call server {|{"id":3,"method":"stats"}|}))

(* a worker that crashes after replying re-runs the job on restart; the
   second reply must be suppressed, not written to the wire *)
let test_server_exactly_once_reply () =
  let config =
    {
      test_config with
      Server.workers = 1;
      chaos_crash_after = Some (Util.Fault.io_plan ~limit:1 Util.Fault.Crash);
    }
  in
  with_server ~config @@ fun server ->
  let m = Mutex.create () and c = Condition.create () in
  let replies = ref 0 in
  Server.submit server {|{"id":1,"method":"stats"}|} ~reply:(fun _ ->
      Mutex.protect m (fun () ->
          incr replies;
          Condition.signal c));
  Mutex.protect m (fun () ->
      while !replies < 1 do
        Condition.wait c m
      done);
  (* the retried job re-runs (FIFO) before this request is answered *)
  ignore (expect_ok (sync_call server {|{"id":2,"method":"stats"}|}));
  Thread.delay 0.05;
  Alcotest.(check int) "exactly one reply" 1 (Mutex.protect m (fun () -> !replies));
  let dups =
    List.filter
      (fun e ->
        e.Util.Diag.stage = "serve.reply" && contains ~sub:"duplicate" e.Util.Diag.detail)
      (Util.Diag.events (Server.diagnostics server))
  in
  Alcotest.(check bool) "duplicate-reply diagnostic recorded" true (dups <> [])

(* satellite: a bounded drain against a wedged worker warns and detaches
   instead of hanging; a later drain re-waits the same joiner and wins *)
let test_server_drain_timeout () =
  let config = { test_config with Server.workers = 1 } in
  let server = Server.create config in
  let started = Atomic.make false and release = Atomic.make false in
  Server.submit server {|{"id":1,"method":"stats"}|} ~reply:(fun _ ->
      Atomic.set started true;
      while not (Atomic.get release) do
        Thread.delay 0.005
      done);
  while not (Atomic.get started) do
    Thread.delay 0.002
  done;
  Server.drain ~timeout_s:0.05 server;
  let timed_out =
    List.exists
      (fun e -> e.Util.Diag.stage = "serve.drain")
      (Util.Diag.events (Server.diagnostics server))
  in
  Alcotest.(check bool) "drain-timeout diagnostic" true timed_out;
  Atomic.set release true;
  Server.drain server

(* the acceptance bar: a fault storm (worker crashes, read errors, torn
   writes, latency; >= 50 injected) completes with zero wrong results,
   every failure typed, and the server back to healthy *)
let test_server_chaos_invariants () =
  let store_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "kle-test-chaos.%d" (Unix.getpid ()))
  in
  let cfg =
    {
      Serve.Chaos.default_config with
      Serve.Chaos.requests = 60;
      mc_samples = 8;
      crash_period = 10;
      crash_limit = 4;
      read_error_period = 4;
      short_read_period = 6;
      torn_write_period = 2;
      latency_period = 2;
      latency_ms = 0.05;
    }
  in
  let report =
    Fun.protect
      ~finally:(fun () ->
        try
          Array.iter
            (fun f -> Sys.remove (Filename.concat store_dir f))
            (Sys.readdir store_dir);
          Unix.rmdir store_dir
        with Sys_error _ | Unix.Unix_error _ -> ())
      (fun () -> Serve.Chaos.run ~store_dir cfg)
  in
  Alcotest.(check bool)
    (Printf.sprintf "fault floor (got %d)" report.Serve.Chaos.faults_injected)
    true
    (report.Serve.Chaos.faults_injected >= 50);
  Alcotest.(check bool) "workers were crashed" true
    (report.Serve.Chaos.worker_restarts >= 1);
  (match Serve.Chaos.violations ~min_faults:50 report with
  | [] -> ()
  | v ->
      Alcotest.failf "chaos violations: %s (report: %s)" (String.concat "; " v)
        (Serve.Chaos.report_to_string report))

let () =
  Alcotest.run "serve"
    [
      ( "jsonx",
        [
          Alcotest.test_case "roundtrip" `Quick test_jsonx_roundtrip;
          Alcotest.test_case "escapes" `Quick test_jsonx_escapes;
          Alcotest.test_case "numbers" `Quick test_jsonx_numbers;
          Alcotest.test_case "errors" `Quick test_jsonx_errors;
          Alcotest.test_case "member" `Quick test_jsonx_member;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "decode ok" `Quick test_protocol_decode_ok;
          Alcotest.test_case "decode errors" `Quick test_protocol_decode_errors;
          Alcotest.test_case "responses" `Quick test_protocol_responses;
        ] );
      ( "lru",
        [
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "overwrite + remove" `Quick test_lru_overwrite_and_remove;
          Alcotest.test_case "recency sequence" `Quick test_lru_recency_sequence;
          Alcotest.test_case "matches reference model" `Quick
            test_lru_matches_reference_model;
        ] );
      ( "server",
        [
          Alcotest.test_case "run_mc ok" `Quick test_server_run_mc_ok;
          Alcotest.test_case "cache tiers" `Quick test_server_cache_tiers;
          Alcotest.test_case "typed errors" `Quick test_server_typed_errors;
          Alcotest.test_case "bench errors are typed" `Quick
            test_server_bench_errors_are_typed;
          Alcotest.test_case "overload backpressure" `Quick test_server_overload_backpressure;
          Alcotest.test_case "deadline exceeded" `Quick test_server_deadline_exceeded;
          Alcotest.test_case "shutdown drains" `Quick test_server_shutdown_drains;
          Alcotest.test_case "stats payload" `Quick test_server_stats_payload;
          Alcotest.test_case "single-flight dedup" `Quick test_server_single_flight;
          Alcotest.test_case "hierarchical factor reuse" `Quick
            test_server_hierarchical_factor_reuse;
          Alcotest.test_case "reply failure survives" `Quick
            test_server_reply_failure_survives;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "health payload" `Quick test_server_health_payload;
          Alcotest.test_case "worker restart retries" `Quick
            test_server_worker_restart_retries;
          Alcotest.test_case "poison quarantine" `Quick test_server_poison_quarantine;
          Alcotest.test_case "exactly-once reply" `Quick test_server_exactly_once_reply;
          Alcotest.test_case "drain timeout" `Quick test_server_drain_timeout;
          Alcotest.test_case "chaos invariants" `Slow test_server_chaos_invariants;
        ] );
    ]
