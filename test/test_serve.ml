(* Serving layer: JSON reader/writer, protocol decode (every typed error
   code), the LRU hot tier, and the concurrent server end-to-end —
   including the satellite contract that Bench_format parse errors surface
   as typed [netlist_error] protocol errors. *)

module Jsonx = Serve.Jsonx
module Protocol = Serve.Protocol
module Lru = Serve.Lru
module Server = Serve.Server

(* ---------- jsonx ---------- *)

let parse_ok s =
  match Jsonx.parse s with
  | Ok v -> v
  | Error msg -> Alcotest.failf "parse %S failed: %s" s msg

let test_jsonx_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (Jsonx.to_string (parse_ok s)))
    [
      "null"; "true"; "false"; "0"; "-7"; "123456789"; "1.5"; "-0.25";
      "\"\""; "\"abc\""; "[]"; "[1,2,3]"; "{}";
      {|{"a":1,"b":[true,null],"c":{"d":"e"}}|};
    ]

let test_jsonx_escapes () =
  Alcotest.(check (option string)) "basic escapes" (Some "a\"b\\c/\n\t\r\b\012")
    (Jsonx.as_str (parse_ok {|"a\"b\\c\/\n\t\r\b\f"|}));
  Alcotest.(check (option string)) "bmp escape" (Some "\xe2\x82\xac")
    (Jsonx.as_str (parse_ok {|"\u20ac"|}));
  Alcotest.(check (option string)) "surrogate pair" (Some "\xf0\x9d\x84\x9e")
    (Jsonx.as_str (parse_ok {|"\ud834\udd1e"|}));
  (* output escapes control characters and quotes back to parseable form *)
  let s = "line1\nline2\t\"q\"" in
  Alcotest.(check (option string)) "escape roundtrip" (Some s)
    (Jsonx.as_str (parse_ok (Jsonx.to_string (Jsonx.Str s))))

let test_jsonx_numbers () =
  Alcotest.(check (option int)) "int" (Some 42) (Jsonx.as_int (parse_ok "42"));
  Alcotest.(check (option int)) "exp" (Some 1200) (Jsonx.as_int (parse_ok "1.2e3"));
  Alcotest.(check (option int)) "not integral" None (Jsonx.as_int (parse_ok "1.5"));
  Alcotest.(check string) "integral prints as int" "7" (Jsonx.to_string (Jsonx.Num 7.0));
  Alcotest.(check string) "fraction keeps point" "0.5" (Jsonx.to_string (Jsonx.Num 0.5));
  Alcotest.(check string) "nan is null" "null" (Jsonx.to_string (Jsonx.Num Float.nan))

let test_jsonx_errors () =
  List.iter
    (fun s ->
      match Jsonx.parse s with
      | Ok v -> Alcotest.failf "parse %S should fail, got %s" s (Jsonx.to_string v)
      | Error _ -> ())
    [
      ""; "{"; "["; "tru"; "nul"; "{\"a\"}"; "{\"a\":}"; "[1,]"; "{,}"; "\"unterminated";
      "\"bad \\x escape\""; "+1"; "1 2"; "{\"a\":1} trailing"; "\"\\ud834\"";
    ]

let test_jsonx_member () =
  let v = parse_ok {|{"a":1,"b":"x"}|} in
  Alcotest.(check (option int)) "a" (Some 1) (Option.bind (Jsonx.member "a" v) Jsonx.as_int);
  Alcotest.(check bool) "missing" true (Jsonx.member "zz" v = None);
  Alcotest.(check bool) "non-object" true (Jsonx.member "a" (Jsonx.Num 1.0) = None)

(* ---------- protocol ---------- *)

let decode_err line =
  match Protocol.decode line with
  | Ok _ -> Alcotest.failf "decode %S should fail" line
  | Error rej -> (rej.Protocol.reject_id, rej.Protocol.code, rej.Protocol.message)

let test_protocol_decode_ok () =
  (match Protocol.decode {|{"id":1,"method":"stats"}|} with
  | Ok { id = Jsonx.Num 1.0; req_id = None; deadline_ms = None; call = Protocol.Stats } -> ()
  | _ -> Alcotest.fail "stats decode");
  (match
     Protocol.decode
       {|{"id":"x","deadline_ms":250,"method":"run_mc","params":{"circuit":{"name":"c17"},"sampler":"kle-qmc","n":100,"seed":7,"r":12,"batch":64}}|}
   with
  | Ok
      {
        id = Jsonx.Str "x";
        req_id = None;
        deadline_ms = Some 250.0;
        call =
          Protocol.Run_mc
            { circuit = Protocol.Named "c17"; sampler = Protocol.Kle_qmc;
              r = Some 12; seed = 7; n = 100; batch = Some 64; full = false };
      } -> ()
  | _ -> Alcotest.fail "run_mc decode");
  (match
     Protocol.decode {|{"id":2,"method":"prepare","params":{"circuit":{"bench":"INPUT(a)\n"}}}|}
   with
  | Ok { call = Protocol.Prepare { circuit = Protocol.Bench_text _; r = None }; _ } -> ()
  | _ -> Alcotest.fail "prepare bench decode")

let test_protocol_decode_errors () =
  let check_code line expected =
    let _, code, _ = decode_err line in
    Alcotest.(check string) line
      (Protocol.error_code_name expected)
      (Protocol.error_code_name code)
  in
  check_code "{not json" Protocol.Parse_error;
  check_code "[1,2]" Protocol.Invalid_request;
  check_code "\"hi\"" Protocol.Invalid_request;
  check_code {|{"id":1}|} Protocol.Invalid_request;
  check_code {|{"id":1,"method":"frobnicate"}|} Protocol.Unknown_method;
  check_code {|{"id":1,"method":"run_mc"}|} Protocol.Bad_params;
  check_code {|{"id":1,"method":"run_mc","params":{"circuit":{"name":"c17"}}}|} Protocol.Bad_params;
  check_code {|{"id":1,"method":"run_mc","params":{"circuit":{"name":"c17"},"n":0}}|}
    Protocol.Bad_params;
  check_code {|{"id":1,"method":"run_mc","params":{"circuit":{"name":"c17"},"n":10,"sampler":"bogus"}}|}
    Protocol.Bad_params;
  check_code {|{"id":1,"method":"prepare","params":{}}|} Protocol.Bad_params;
  check_code {|{"id":1,"deadline_ms":-5,"method":"stats"}|} Protocol.Bad_params;
  (* the id is still recovered for correlation whenever the line parses *)
  let id, _, _ = decode_err {|{"id":77,"method":"frobnicate"}|} in
  Alcotest.(check (option int)) "id recovered" (Some 77) (Jsonx.as_int id);
  let id, _, _ = decode_err "{not json" in
  Alcotest.(check bool) "unparseable id is null" true (id = Jsonx.Null)

let test_protocol_responses () =
  let ok = Protocol.ok_response ~id:(Jsonx.Num 3.0) (Jsonx.Obj [ ("x", Jsonx.Num 1.0) ]) in
  Alcotest.(check string) "ok" {|{"id":3,"ok":{"x":1}}|} ok;
  let err = Protocol.error_response ~id:(Jsonx.Str "a") Protocol.Overloaded "queue full" in
  Alcotest.(check string) "error"
    {|{"id":"a","error":{"code":"overloaded","message":"queue full"}}|} err;
  Alcotest.(check bool) "response_id" true
    (Protocol.response_id ok = Some (Jsonx.Num 3.0))

(* ---------- lru ---------- *)

let test_lru_eviction_order () =
  let c = Lru.create ~capacity:2 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  (* touch a so b is the oldest *)
  Alcotest.(check (option int)) "find a" (Some 1) (Lru.find c "a");
  Lru.add c "c" 3;
  Alcotest.(check (option int)) "b evicted" None (Lru.find c "b");
  Alcotest.(check (option int)) "a kept" (Some 1) (Lru.find c "a");
  Alcotest.(check (option int)) "c kept" (Some 3) (Lru.find c "c");
  Alcotest.(check int) "length" 2 (Lru.length c);
  let s = Lru.stats c in
  Alcotest.(check int) "evictions" 1 s.Lru.evictions;
  Alcotest.(check int) "misses" 1 s.Lru.misses

let test_lru_overwrite_and_remove () =
  let c = Lru.create ~capacity:2 in
  Lru.add c "a" 1;
  Lru.add c "a" 10;
  Alcotest.(check int) "overwrite keeps one entry" 1 (Lru.length c);
  Alcotest.(check (option int)) "new value" (Some 10) (Lru.find c "a");
  Lru.remove c "a";
  Alcotest.(check (option int)) "removed" None (Lru.find c "a");
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Lru.create: capacity < 1") (fun () ->
      ignore (Lru.create ~capacity:0 : int Lru.t))

let test_lru_recency_sequence () =
  (* exercises the intrusive recency list: overwrites refresh recency,
     removes unlink interior nodes, and every eviction takes the true LRU
     entry *)
  let c = Lru.create ~capacity:3 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Lru.add c "c" 3;
  (* recency c > b > a; overwriting a moves it to the front *)
  Lru.add c "a" 10;
  Lru.add c "d" 4;
  Alcotest.(check (option int)) "b was the LRU entry" None (Lru.find c "b");
  Alcotest.(check (option int)) "refreshed a survives" (Some 10) (Lru.find c "a");
  (* recency a > d > c; unlink the middle node, then refill *)
  Lru.remove c "d";
  Lru.add c "e" 5;
  Alcotest.(check int) "free slot reused without eviction" 3 (Lru.length c);
  Lru.add c "f" 6;
  Alcotest.(check (option int)) "c was the LRU entry" None (Lru.find c "c");
  Alcotest.(check (option int)) "e kept" (Some 5) (Lru.find c "e");
  Alcotest.(check (option int)) "a kept" (Some 10) (Lru.find c "a");
  Alcotest.(check int) "two evictions" 2 (Lru.stats c).Lru.evictions

let test_lru_matches_reference_model () =
  (* drive the cache and a naive most-recent-first assoc list through the
     same deterministic op sequence; they must agree at every step *)
  let cap = 4 in
  let c = Lru.create ~capacity:cap in
  let model = ref ([] : (string * int) list) in
  let m_remove k = model := List.filter (fun (k', _) -> not (String.equal k' k)) !model in
  for step = 0 to 999 do
    let k = "k" ^ string_of_int (step * 7 mod 6) in
    (match step * 13 mod 3 with
    | 0 ->
        Lru.add c k step;
        if not (List.mem_assoc k !model) && List.length !model >= cap then
          model := List.filteri (fun i _ -> i < cap - 1) !model;
        m_remove k;
        model := (k, step) :: !model
    | 1 ->
        let got = Lru.find c k in
        let expect = List.assoc_opt k !model in
        Alcotest.(check (option int)) (Printf.sprintf "find at step %d" step) expect got;
        (match expect with
        | Some v ->
            m_remove k;
            model := (k, v) :: !model
        | None -> ())
    | _ ->
        Lru.remove c k;
        m_remove k);
    Alcotest.(check int)
      (Printf.sprintf "length at step %d" step)
      (List.length !model) (Lru.length c)
  done;
  (* final state: every model entry is present with the model's value *)
  List.iter
    (fun (k, v) -> Alcotest.(check (option int)) ("final " ^ k) (Some v) (Lru.find c k))
    !model

(* ---------- server end-to-end ---------- *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec scan i = i + n <= m && (String.sub s i n = sub || scan (i + 1)) in
  n = 0 || scan 0

(* tiny inline netlist so server tests stay fast *)
let tiny_bench = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nx = NAND(a, b)\ny = NOT(x)\n"

let escape_bench s =
  String.concat "" (List.map (function '\n' -> "\\n" | c -> String.make 1 c)
      (List.init (String.length s) (String.get s)))

(* fast KLE config: coarse mesh, dense eigensolve *)
let test_config =
  {
    Server.default_config with
    Server.kle =
      { Ssta.Algorithm2.paper_config with Ssta.Algorithm2.max_area_fraction = 0.05 };
  }

(* synchronous call helper: submit and wait for the single reply *)
let sync_call server line =
  let m = Mutex.create () and c = Condition.create () in
  let slot = ref None in
  Server.submit server line ~reply:(fun r ->
      Mutex.protect m (fun () ->
          slot := Some r;
          Condition.signal c));
  Mutex.protect m (fun () ->
      while !slot = None do
        Condition.wait c m
      done;
      Option.get !slot)

let reply_json line =
  match Jsonx.parse line with
  | Ok v -> v
  | Error msg -> Alcotest.failf "reply not JSON: %s (%s)" line msg

let expect_error line expected =
  let v = reply_json line in
  match Option.bind (Jsonx.member "error" v) (Jsonx.member "code") with
  | Some (Jsonx.Str code) ->
      Alcotest.(check string) "error code" (Protocol.error_code_name expected) code;
      Option.value ~default:""
        (Option.bind
           (Option.bind (Jsonx.member "error" v) (Jsonx.member "message"))
           Jsonx.as_str)
  | _ -> Alcotest.failf "expected %s error, got %s" (Protocol.error_code_name expected) line

let expect_ok line =
  let v = reply_json line in
  match Jsonx.member "ok" v with
  | Some payload -> payload
  | None -> Alcotest.failf "expected ok, got %s" line

let with_server ?(config = test_config) f =
  let server = Server.create config in
  Fun.protect ~finally:(fun () -> Server.drain server) (fun () -> f server)

let run_mc_line ?(id = 1) ?(sampler = "cholesky") ?(n = 32) () =
  Printf.sprintf
    {|{"id":%d,"method":"run_mc","params":{"circuit":{"bench":"%s"},"sampler":"%s","n":%d,"seed":3}}|}
    id (escape_bench tiny_bench) sampler n

let float_exact =
  Alcotest.testable
    (fun ppf v -> Format.fprintf ppf "%h" v)
    (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b)

let test_server_run_mc_ok () =
  with_server @@ fun server ->
  let payload = expect_ok (sync_call server (run_mc_line ())) in
  Alcotest.(check (option int)) "n_samples" (Some 32)
    (Option.bind (Jsonx.member "n_samples" payload) Jsonx.as_int);
  (match Option.bind (Jsonx.member "worst_mean" payload) Jsonx.as_num with
  | Some m when Float.is_finite m && m > 0.0 -> ()
  | _ -> Alcotest.fail "finite positive worst_mean expected");
  (* the reply is deterministic: same request, same numbers (cache hit path) *)
  let payload2 = expect_ok (sync_call server (run_mc_line ())) in
  Alcotest.(check (option float_exact)) "deterministic worst_mean"
    (Option.bind (Jsonx.member "worst_mean" payload) Jsonx.as_num)
    (Option.bind (Jsonx.member "worst_mean" payload2) Jsonx.as_num)

let test_server_cache_tiers () =
  with_server @@ fun server ->
  let line =
    Printf.sprintf
      {|{"id":9,"method":"run_mc","params":{"circuit":{"bench":"%s"},"sampler":"kle","n":16,"seed":1}}|}
      (escape_bench tiny_bench)
  in
  let first = expect_ok (sync_call server line) in
  let tier j = Option.bind (Jsonx.member j first) Jsonx.as_str in
  Alcotest.(check (option string)) "first setup is a miss" (Some "miss")
    (tier "cache_setup");
  let second = expect_ok (sync_call server line) in
  Alcotest.(check (option string)) "second setup from memory" (Some "hit-mem")
    (Option.bind (Jsonx.member "cache_setup" second) Jsonx.as_str);
  Alcotest.(check (option string)) "second models from memory" (Some "hit-mem")
    (Option.bind (Jsonx.member "cache_models" second) Jsonx.as_str)

let test_server_typed_errors () =
  with_server @@ fun server ->
  ignore (expect_error (sync_call server "{nope") Protocol.Parse_error);
  ignore (expect_error (sync_call server {|{"id":1,"method":"warp"}|}) Protocol.Unknown_method);
  ignore
    (expect_error
       (sync_call server {|{"id":1,"method":"run_mc","params":{"circuit":{"name":"c17"}}}|})
       Protocol.Bad_params);
  let msg =
    expect_error
      (sync_call server
         {|{"id":1,"method":"run_mc","params":{"circuit":{"name":"no-such-circuit"},"n":8}}|})
      Protocol.Netlist_error
  in
  Alcotest.(check bool) "names the circuit" true (contains ~sub:"no-such-circuit" msg)

(* satellite contract: every Bench_format parse-error path maps to a typed
   [netlist_error] protocol error carrying the parser's message *)
let test_server_bench_errors_are_typed () =
  with_server @@ fun server ->
  let cases =
    [
      ("y = NOT(ghost)\n", "undefined signal \"ghost\"");
      ("x = NOT(y)\ny = NOT(x)\n", "combinational loop through");
      ("INPUT(a)\nINPUT(b)\ny = NOT(a, b)\n", "unsupported function NOT/2");
      ("INPUT(a)\ny = FROB(a)\n", "unsupported function FROB/1");
      ("INPUT(a)\ny = NOT a\n", "malformed gate definition");
      ("what is this line\n", "expected INPUT(..), OUTPUT(..) or assignment");
    ]
  in
  List.iter
    (fun (bench, expected_substr) ->
      let line =
        Printf.sprintf
          {|{"id":1,"method":"prepare","params":{"circuit":{"bench":"%s"}}}|} (escape_bench bench)
      in
      let msg = expect_error (sync_call server line) Protocol.Netlist_error in
      Alcotest.(check bool)
        (Printf.sprintf "%S carries %S (got %S)" bench expected_substr msg)
        true (contains ~sub:expected_substr msg))
    cases

(* satellite contract: a semantically unknown params key is a typed
   [bad_params] naming the offending key in the error's [field] member,
   with the request's [req_id] still echoed *)
let test_protocol_unknown_param_key () =
  let check_reject line ~field ~req_id =
    match Protocol.decode line with
    | Ok _ -> Alcotest.failf "accepted: %s" line
    | Error rej ->
        Alcotest.(check string) "code"
          (Protocol.error_code_name Protocol.Bad_params)
          (Protocol.error_code_name rej.Protocol.code);
        Alcotest.(check (option string)) "field" (Some field) rej.Protocol.field;
        Alcotest.(check (option string)) "req_id echoed" req_id rej.Protocol.reject_req_id;
        Alcotest.(check bool)
          (Printf.sprintf "message %S names %S" rej.Protocol.message field)
          true (contains ~sub:field rej.Protocol.message);
        rej
  in
  let rej =
    check_reject
      {|{"id":1,"req_id":"cli-9","method":"retime","params":{"circuit":{"name":"c17"},"bogus":1}}|}
      ~field:"bogus" ~req_id:(Some "cli-9")
  in
  (* the encoded error object carries the field + echoes req_id *)
  let encoded =
    Protocol.error_response ~id:rej.Protocol.reject_id
      ?req_id:rej.Protocol.reject_req_id ?field:rej.Protocol.field rej.Protocol.code
      rej.Protocol.message
  in
  let v = reply_json encoded in
  Alcotest.(check (option string)) "encoded field" (Some "bogus")
    (Option.bind (Option.bind (Jsonx.member "error" v) (Jsonx.member "field")) Jsonx.as_str);
  Alcotest.(check (option string)) "encoded req_id" (Some "cli-9")
    (Option.bind (Jsonx.member "req_id" v) Jsonx.as_str);
  (* nested objects are validated too: circuit and edit *)
  ignore
    (check_reject
       {|{"id":2,"method":"run_mc","params":{"circuit":{"name":"c17","zap":true},"n":8}}|}
       ~field:"zap" ~req_id:None);
  ignore
    (check_reject
       {|{"id":3,"method":"retime","params":{"circuit":{"name":"c17"},"edit":{"gate":0,"kind":"inv","why":"x"}}}|}
       ~field:"why" ~req_id:None);
  (* unknown methods still answer unknown_method, not bad_params *)
  match Protocol.decode {|{"id":4,"method":"warp","params":{"bogus":1}}|} with
  | Error rej ->
      Alcotest.(check string) "unknown method wins"
        (Protocol.error_code_name Protocol.Unknown_method)
        (Protocol.error_code_name rej.Protocol.code)
  | Ok _ -> Alcotest.fail "warp accepted"

let retime_line ?(id = 1) ?edit () =
  let edit_field =
    match edit with
    | None -> ""
    | Some (gate, kind) -> Printf.sprintf {|,"edit":{"gate":%d,"kind":"%s"}|} gate kind
  in
  Printf.sprintf
    {|{"id":%d,"method":"retime","params":{"circuit":{"bench":"%s"}%s}}|}
    id (escape_bench tiny_bench) edit_field

let test_server_retime_end_to_end () =
  let store_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "serve-retime.%d.%d" (Unix.getpid ()) (Random.int 1_000_000))
  in
  Fun.protect
    ~finally:(fun () ->
      (try
         Array.iter
           (fun f -> Sys.remove (Filename.concat store_dir f))
           (Sys.readdir store_dir)
       with Sys_error _ -> ());
      try Unix.rmdir store_dir with Unix.Unix_error _ -> ())
  @@ fun () ->
  let config = { test_config with Server.store_dir = Some store_dir } in
  with_server ~config @@ fun server ->
  let int_of payload k = Option.bind (Jsonx.member k payload) Jsonx.as_int in
  (* cold: every block extracted *)
  let cold = expect_ok (sync_call server (retime_line ~id:1 ())) in
  let nb = Option.get (int_of cold "n_blocks") in
  Alcotest.(check bool) "blocks partitioned" true (nb >= 1);
  Alcotest.(check (option int)) "cold reused" (Some 0) (int_of cold "blocks_reused");
  Alcotest.(check (option int)) "cold recomputed" (Some nb)
    (int_of cold "blocks_recomputed");
  (* warm: the whole stitched result is served from the dependency cache *)
  let warm = expect_ok (sync_call server (retime_line ~id:2 ())) in
  Alcotest.(check (option int)) "warm reused" (Some nb) (int_of warm "blocks_reused");
  Alcotest.(check (option int)) "warm recomputed" (Some 0)
    (int_of warm "blocks_recomputed");
  Alcotest.(check (option float_exact)) "bit-identical worst_mean"
    (Option.bind (Jsonx.member "worst_mean" cold) Jsonx.as_num)
    (Option.bind (Jsonx.member "worst_mean" warm) Jsonx.as_num);
  (* one-gate edit (x = NAND -> NOR, same pin capacitance): exactly the
     dirty block re-extracts *)
  let edited = expect_ok (sync_call server (retime_line ~id:3 ~edit:(2, "nor2") ())) in
  Alcotest.(check (option int)) "edit recomputed" (Some 1)
    (int_of edited "blocks_recomputed");
  Alcotest.(check (option int)) "edit reused" (Some (nb - 1))
    (int_of edited "blocks_reused");
  (* cumulative counters surface in stats *)
  let stats = expect_ok (sync_call server {|{"id":9,"method":"stats"}|}) in
  Alcotest.(check (option int)) "stats reused" (Some (nb + (nb - 1)))
    (int_of stats "retime_blocks_reused");
  Alcotest.(check (option int)) "stats recomputed" (Some (nb + 1))
    (int_of stats "retime_blocks_recomputed");
  (* edit validation surfaces as bad_params: inputs are not editable *)
  ignore
    (expect_error
       (sync_call server (retime_line ~id:4 ~edit:(0, "inv") ()))
       Protocol.Bad_params)

let test_server_overload_backpressure () =
  let config = { test_config with Server.workers = 1; Server.queue_capacity = 1 } in
  let server = Server.create config in
  let m = Mutex.create () and c = Condition.create () in
  let replies = ref [] and expected = 6 in
  let reply r =
    Mutex.protect m (fun () ->
        replies := r :: !replies;
        Condition.signal c)
  in
  (* a burst: one request occupies the worker, one fits the queue, the rest
     must be rejected immediately with [overloaded] *)
  for i = 1 to expected do
    Server.submit server (run_mc_line ~id:i ~n:256 ()) ~reply
  done;
  Mutex.protect m (fun () ->
      while List.length !replies < expected do
        Condition.wait c m
      done);
  Server.drain server;
  let overloaded =
    List.length
      (List.filter
         (fun r ->
           match Option.bind (Jsonx.member "error" (reply_json r)) (Jsonx.member "code") with
           | Some (Jsonx.Str "overloaded") -> true
           | _ -> false)
         !replies)
  in
  Alcotest.(check bool)
    (Printf.sprintf "some of the burst rejected (got %d)" overloaded)
    true (overloaded >= 1);
  Alcotest.(check bool) "but not all" true (overloaded < expected)

let test_server_deadline_exceeded () =
  (* the deadline clock is Util.Trace.now_ns, which reads the raw monotonic
     clock: deadlines must fire even though tracing is disabled here *)
  Alcotest.(check bool) "tracing is off" false (Util.Trace.enabled ());
  let config = { test_config with Server.workers = 1 } in
  with_server ~config @@ fun server ->
  let m = Mutex.create () and c = Condition.create () in
  let replies = ref [] in
  let reply r =
    Mutex.protect m (fun () ->
        replies := r :: !replies;
        Condition.signal c)
  in
  (* occupy the single worker, then submit a request whose deadline expires
     while it waits in the queue *)
  Server.submit server (run_mc_line ~id:1 ~n:512 ()) ~reply;
  Server.submit server {|{"id":2,"deadline_ms":0.001,"method":"stats"}|} ~reply;
  Mutex.protect m (fun () ->
      while List.length !replies < 2 do
        Condition.wait c m
      done);
  let deadline_reply =
    List.find
      (fun r -> Protocol.response_id r = Some (Jsonx.Num 2.0))
      !replies
  in
  ignore (expect_error deadline_reply Protocol.Deadline_exceeded)

let test_server_shutdown_drains () =
  let server = Server.create test_config in
  let ok = expect_ok (sync_call server {|{"id":1,"method":"shutdown"}|}) in
  Alcotest.(check (option bool)) "shutdown acknowledged" (Some true)
    (Option.bind (Jsonx.member "shutting_down" ok) Jsonx.as_bool);
  Alcotest.(check bool) "shutdown flagged" true (Server.shutdown_requested server);
  (* the worker closes intake just after delivering the shutdown reply; a
     request racing that window may still be accepted (and completes under
     drain semantics), but intake must close shortly after *)
  let rec await_closed tries =
    if tries = 0 then Alcotest.fail "intake never closed after shutdown"
    else
      let reply = sync_call server {|{"id":2,"method":"stats"}|} in
      match Option.bind (Jsonx.member "error" (reply_json reply)) (Jsonx.member "code") with
      | Some (Jsonx.Str code) ->
          Alcotest.(check string) "error code"
            (Protocol.error_code_name Protocol.Shutting_down) code
      | _ ->
          Thread.delay 0.01;
          await_closed (tries - 1)
  in
  await_closed 100;
  Server.drain server;
  (* drain is idempotent *)
  Server.drain server

let test_server_stats_payload () =
  with_server @@ fun server ->
  ignore (expect_ok (sync_call server (run_mc_line ())));
  let stats = expect_ok (sync_call server {|{"id":5,"method":"stats"}|}) in
  let int_field f = Option.bind (Jsonx.member f stats) Jsonx.as_int in
  (match int_field "requests" with
  | Some n when n >= 1 -> ()
  | _ -> Alcotest.fail "requests counter");
  Alcotest.(check (option int)) "no rejects" (Some 0) (int_field "rejected");
  Alcotest.(check bool) "lru stats present" true (Jsonx.member "lru" stats <> None);
  Alcotest.(check bool) "store absent without dir" true
    (match Jsonx.member "store" stats with Some Jsonx.Null | None -> true | _ -> false)

(* single-flight: workers racing the same cold key must compute it once.
   Four concurrent prepares of one circuit leave exactly two misses in the
   stats (circuit setup + KLE model) — without deduplication each racer
   would pay its own eigensolve and the miss counter would exceed that. *)
let test_server_single_flight () =
  let config = { test_config with Server.workers = 4 } in
  with_server ~config @@ fun server ->
  let m = Mutex.create () and c = Condition.create () in
  let replies = ref [] and expected = 4 in
  let reply r =
    Mutex.protect m (fun () ->
        replies := r :: !replies;
        Condition.signal c)
  in
  let line =
    Printf.sprintf {|{"id":1,"method":"prepare","params":{"circuit":{"bench":"%s"}}}|}
      (escape_bench tiny_bench)
  in
  for _ = 1 to expected do
    Server.submit server line ~reply
  done;
  Mutex.protect m (fun () ->
      while List.length !replies < expected do
        Condition.wait c m
      done);
  List.iter (fun r -> ignore (expect_ok r)) !replies;
  let stats = expect_ok (sync_call server {|{"id":2,"method":"stats"}|}) in
  Alcotest.(check (option int)) "one compute per key" (Some 2)
    (Option.bind (Jsonx.member "cache_misses" stats) Jsonx.as_int)

(* hierarchical mode: the cluster-tree + ACA factors are a cached artifact
   of their own, keyed by kernel + mesh + build params but NOT by the model
   truncation r — so re-preparing with a different r re-runs only the
   eigensolve, never the compression.  Miss arithmetic: the first prepare
   pays setup + model + factors (3), the second only a model (4 total). *)
let test_server_hierarchical_factor_reuse () =
  let config =
    {
      test_config with
      Server.kle =
        {
          test_config.Server.kle with
          Ssta.Algorithm2.mode = Kle.Galerkin.Hierarchical;
          Ssta.Algorithm2.computed_pairs = 12;
        };
    }
  in
  with_server ~config @@ fun server ->
  let prep id r =
    Printf.sprintf
      {|{"id":%d,"method":"prepare","params":{"circuit":{"bench":"%s"},"r":%d}}|}
      id (escape_bench tiny_bench) r
  in
  ignore (expect_ok (sync_call server (prep 1 4)));
  let misses () =
    Option.bind
      (Jsonx.member "cache_misses" (expect_ok (sync_call server {|{"id":9,"method":"stats"}|})))
      Jsonx.as_int
  in
  Alcotest.(check (option int)) "cold prepare: setup + model + factors" (Some 3)
    (misses ());
  ignore (expect_ok (sync_call server (prep 2 5)));
  Alcotest.(check (option int)) "new truncation recomputes only the model" (Some 4)
    (misses ())

(* a reply that raises (client disconnected mid-write) must not take down
   the worker domain: with a single worker, the next request only gets an
   answer if that worker survived the failed write *)
let test_server_reply_failure_survives () =
  let config = { test_config with Server.workers = 1 } in
  with_server ~config @@ fun server ->
  let m = Mutex.create () and c = Condition.create () in
  let fired = ref false in
  Server.submit server {|{"id":1,"method":"stats"}|} ~reply:(fun _ ->
      Mutex.protect m (fun () ->
          fired := true;
          Condition.signal c);
      raise (Sys_error "Broken pipe"));
  Mutex.protect m (fun () ->
      while not !fired do
        Condition.wait c m
      done);
  let stats = expect_ok (sync_call server {|{"id":2,"method":"stats"}|}) in
  Alcotest.(check bool) "dropped reply recorded" true
    (Util.Diag.count ~code:`Degraded_fallback (Server.diagnostics server) >= 1);
  (* the drop is a first-class stat, not only a diagnostic *)
  match Option.bind (Jsonx.member "replies_dropped" stats) Jsonx.as_int with
  | Some n when n >= 1 -> ()
  | v ->
      Alcotest.failf "replies_dropped: %s"
        (match v with Some n -> string_of_int n | None -> "absent")

(* ---------- supervision, health, chaos ---------- *)

let test_server_health_payload () =
  with_server @@ fun server ->
  let h = expect_ok (sync_call server {|{"id":1,"method":"health"}|}) in
  let int_field f = Option.bind (Jsonx.member f h) Jsonx.as_int in
  Alcotest.(check (option bool)) "healthy" (Some true)
    (Option.bind (Jsonx.member "healthy" h) Jsonx.as_bool);
  Alcotest.(check (option bool)) "not draining" (Some false)
    (Option.bind (Jsonx.member "draining" h) Jsonx.as_bool);
  Alcotest.(check (option int)) "workers" (Some test_config.Server.workers)
    (int_field "workers");
  Alcotest.(check (option int)) "no restarts" (Some 0) (int_field "worker_restarts");
  Alcotest.(check (option int)) "no quarantine" (Some 0) (int_field "quarantined");
  Alcotest.(check (option int)) "queue empty" (Some 0) (int_field "queue_depth");
  (* the probe itself occupies one worker while it is being answered *)
  Alcotest.(check (option int)) "busy = this request" (Some 1) (int_field "workers_busy");
  Alcotest.(check (option string)) "no store configured" (Some "none")
    (Option.bind (Jsonx.member "store" h) Jsonx.as_str)

(* a crashed worker restarts and the in-flight request is retried once:
   the client still sees a plain ok *)
let test_server_worker_restart_retries () =
  let config =
    {
      test_config with
      Server.workers = 1;
      chaos_crash = Some (Util.Fault.io_plan ~limit:1 Util.Fault.Crash);
    }
  in
  with_server ~config @@ fun server ->
  ignore (expect_ok (sync_call server (run_mc_line ())));
  Alcotest.(check int) "one restart" 1 (Server.worker_restarts server);
  Alcotest.(check int) "no quarantine" 0 (Server.quarantined server);
  let h = expect_ok (sync_call server {|{"id":2,"method":"health"}|}) in
  Alcotest.(check (option int)) "health reports the restart" (Some 1)
    (Option.bind (Jsonx.member "worker_restarts" h) Jsonx.as_int)

(* a poison request that kills a second worker is quarantined with a typed
   internal_error instead of crash-looping the pool *)
let test_server_poison_quarantine () =
  let config =
    {
      test_config with
      Server.workers = 1;
      chaos_crash = Some (Util.Fault.io_plan ~period:1 ~limit:2 Util.Fault.Crash);
    }
  in
  with_server ~config @@ fun server ->
  let msg = expect_error (sync_call server (run_mc_line ())) Protocol.Internal_error in
  Alcotest.(check bool) "names the quarantine" true (contains ~sub:"quarantined" msg);
  Alcotest.(check int) "one request quarantined" 1 (Server.quarantined server);
  Alcotest.(check int) "two restarts" 2 (Server.worker_restarts server);
  (* the pool survived: the next request is answered normally *)
  ignore (expect_ok (sync_call server {|{"id":3,"method":"stats"}|}))

(* a worker that crashes after replying re-runs the job on restart; the
   second reply must be suppressed, not written to the wire *)
let test_server_exactly_once_reply () =
  let config =
    {
      test_config with
      Server.workers = 1;
      chaos_crash_after = Some (Util.Fault.io_plan ~limit:1 Util.Fault.Crash);
    }
  in
  with_server ~config @@ fun server ->
  let m = Mutex.create () and c = Condition.create () in
  let replies = ref 0 in
  Server.submit server {|{"id":1,"method":"stats"}|} ~reply:(fun _ ->
      Mutex.protect m (fun () ->
          incr replies;
          Condition.signal c));
  Mutex.protect m (fun () ->
      while !replies < 1 do
        Condition.wait c m
      done);
  (* the retried job re-runs (FIFO) before this request is answered *)
  ignore (expect_ok (sync_call server {|{"id":2,"method":"stats"}|}));
  Thread.delay 0.05;
  Alcotest.(check int) "exactly one reply" 1 (Mutex.protect m (fun () -> !replies));
  let dups =
    List.filter
      (fun e ->
        e.Util.Diag.stage = "serve.reply" && contains ~sub:"duplicate" e.Util.Diag.detail)
      (Util.Diag.events (Server.diagnostics server))
  in
  Alcotest.(check bool) "duplicate-reply diagnostic recorded" true (dups <> [])

(* satellite: a bounded drain against a wedged worker warns and detaches
   instead of hanging; a later drain re-waits the same joiner and wins *)
let test_server_drain_timeout () =
  let config = { test_config with Server.workers = 1 } in
  let server = Server.create config in
  let started = Atomic.make false and release = Atomic.make false in
  Server.submit server {|{"id":1,"method":"stats"}|} ~reply:(fun _ ->
      Atomic.set started true;
      while not (Atomic.get release) do
        Thread.delay 0.005
      done);
  while not (Atomic.get started) do
    Thread.delay 0.002
  done;
  Server.drain ~timeout_s:0.05 server;
  let timed_out =
    List.exists
      (fun e -> e.Util.Diag.stage = "serve.drain")
      (Util.Diag.events (Server.diagnostics server))
  in
  Alcotest.(check bool) "drain-timeout diagnostic" true timed_out;
  Atomic.set release true;
  Server.drain server

(* ---------- jsonx escaping (satellite) ---------- *)

(* control characters must leave the writer escaped (named or \uXXXX) and
   parse back byte-identically; bytes >= 0x20 — including raw UTF-8 and
   arbitrary high bytes — pass through unescaped and round-trip *)
let test_jsonx_control_and_bytes () =
  let ctl = String.init 0x20 Char.chr in
  let out = Jsonx.to_string (Jsonx.Str ctl) in
  Alcotest.(check bool) "no raw control byte in the output" true
    (String.for_all (fun ch -> Char.code ch >= 0x20) out);
  Alcotest.(check bool) "uses \\u escapes" true (contains ~sub:{|\u0000|} out);
  Alcotest.(check (option string)) "control chars roundtrip" (Some ctl)
    (Jsonx.as_str (parse_ok out));
  List.iter
    (fun s ->
      let printed = Jsonx.to_string (Jsonx.Str s) in
      Alcotest.(check bool) ("raw passthrough: " ^ String.escaped s) true
        (contains ~sub:s printed);
      Alcotest.(check (option string)) ("roundtrip: " ^ String.escaped s) (Some s)
        (Jsonx.as_str (parse_ok printed)))
    [ "\xe2\x82\xac euro"; "caf\xc3\xa9"; "\xf0\x9d\x84\x9e"; "raw \xff\x80 bytes" ]

(* ---------- binary wire ---------- *)

module Wire = Serve.Wire
module Codec = Persist.Codec
module Router = Serve.Router
module Batch = Serve.Batch

let test_wire_frame_roundtrip () =
  List.iter
    (fun payload ->
      let framed = Wire.frame payload in
      Alcotest.(check char) "magic0 leads the frame" Wire.magic0 framed.[0];
      match Wire.unframe framed with
      | Ok p -> Alcotest.(check string) "payload survives" payload p
      | Error `Eof -> Alcotest.fail "unexpected Eof"
      | Error (`Corrupt msg) -> Alcotest.failf "corrupt: %s" msg)
    [ ""; "x"; String.make 4096 '\xB5'; "\x00\x01\xff" ];
  match Wire.frame (String.make (Wire.max_payload + 1) 'a') with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "oversized payload framed"

let expect_corrupt ?sub s =
  match Wire.unframe s with
  | Error (`Corrupt msg) -> (
      match sub with
      | Some sub -> Alcotest.(check bool) ("mentions " ^ sub) true (contains ~sub msg)
      | None -> ())
  | Error `Eof -> Alcotest.fail "Eof where Corrupt expected"
  | Ok _ -> Alcotest.fail "adversarial frame accepted"

let test_wire_adversarial_headers () =
  let good = Wire.frame "hello" in
  expect_corrupt ~sub:"magic" ("XX" ^ String.sub good 2 (String.length good - 2));
  let bad_version = Bytes.of_string good in
  Bytes.set bad_version 2 '\x7f';
  expect_corrupt ~sub:"version" (Bytes.to_string bad_version);
  (* declared length disagreeing with the bytes present, either way *)
  expect_corrupt (String.sub good 0 (String.length good - 1));
  expect_corrupt (good ^ "!");
  (* a ~4 GiB length claim is refused before any allocation — the framing
     analogue of the persist read_mat header guard *)
  let w = Codec.writer () in
  Codec.write_u8 w (Char.code Wire.magic0);
  Codec.write_u8 w (Char.code Wire.magic1);
  Codec.write_u8 w Wire.version;
  Codec.write_fixed32 w 0xFFFF_FFFF;
  expect_corrupt ~sub:"cap" (Codec.contents w);
  (* a buffer that ends inside the header is corrupt, not a crash *)
  expect_corrupt (String.make 2 Wire.magic0)

let test_wire_read_frame () =
  let rd_fd, wr_fd = Unix.pipe () in
  let ic = Unix.in_channel_of_descr rd_fd and oc = Unix.out_channel_of_descr wr_fd in
  output_string oc (Wire.frame "alpha");
  output_string oc (Wire.frame "");
  (* a stream where the auto-detect sniffer already consumed the magic byte *)
  let sniffed = Wire.frame "sniffed" in
  output_string oc (String.sub sniffed 1 (String.length sniffed - 1));
  flush oc;
  (match Wire.read_frame ic with
  | Ok "alpha" -> ()
  | _ -> Alcotest.fail "first frame");
  (match Wire.read_frame ic with Ok "" -> () | _ -> Alcotest.fail "empty frame");
  (match Wire.read_frame ~magic_consumed:true ic with
  | Ok "sniffed" -> ()
  | _ -> Alcotest.fail "magic_consumed frame");
  close_out oc;
  (match Wire.read_frame ic with Error `Eof -> () | _ -> Alcotest.fail "eof expected");
  close_in ic;
  (* a stream cut mid-frame surfaces as corrupt, not a hang or crash *)
  let rd_fd, wr_fd = Unix.pipe () in
  let ic = Unix.in_channel_of_descr rd_fd and oc = Unix.out_channel_of_descr wr_fd in
  let cut = Wire.frame "cut short" in
  output_string oc (String.sub cut 0 (String.length cut - 3));
  close_out oc;
  (match Wire.read_frame ic with
  | Error (`Corrupt msg) ->
      Alcotest.(check bool) "says truncated" true (contains ~sub:"truncated" msg)
  | _ -> Alcotest.fail "truncated stream accepted");
  close_in ic

let test_wire_jsonx_codec () =
  let roundtrip v =
    let w = Codec.writer () in
    Wire.encode_jsonx w v;
    let rd = Codec.reader (Codec.contents w) in
    let back = Wire.decode_jsonx rd in
    Alcotest.(check string) "codec roundtrip" (Jsonx.to_string v) (Jsonx.to_string back)
  in
  List.iter roundtrip
    [
      Jsonx.Null; Jsonx.Bool true; Jsonx.Bool false; Jsonx.Num 0.0; Jsonx.Num (-1.5);
      Jsonx.Num 1e300; Jsonx.Str ""; Jsonx.Str "caf\xc3\xa9 \n\000"; Jsonx.List [];
      Jsonx.List [ Jsonx.Num 1.0; Jsonx.Num 2.5; Jsonx.Num (-3.0) ];
      Jsonx.List [ Jsonx.Num 1.0; Jsonx.Str "mixed" ]; Jsonx.Obj [];
      Jsonx.Obj [ ("a", Jsonx.Num 1.0); ("b", Jsonx.List [ Jsonx.Bool false; Jsonx.Null ]) ];
    ];
  (* the numeric-vector fast path actually packs: tag 7, ~8 bytes/element *)
  let w = Codec.writer () in
  Wire.encode_jsonx w (Jsonx.List (List.init 100 (fun i -> Jsonx.Num (float_of_int i))));
  let bytes = Codec.contents w in
  Alcotest.(check int) "packed float-array tag" 7 (Char.code bytes.[0]);
  Alcotest.(check bool) "packed, not per-element tagged" true
    (String.length bytes < (100 * 9) + 16)

let test_wire_jsonx_adversarial () =
  let expect_err what bytes =
    let rd = Codec.reader bytes in
    match Wire.decode_jsonx rd with
    | exception Codec.Error _ -> ()
    | v -> Alcotest.failf "%s accepted as %s" what (Jsonx.to_string v)
  in
  (* hostile collection counts with no bytes behind them: rejected before
     any allocation proportional to the claim *)
  let w = Codec.writer () in
  Codec.write_u8 w 5;
  Codec.write_uint w (1 lsl 30);
  expect_err "huge list count" (Codec.contents w);
  let w = Codec.writer () in
  Codec.write_u8 w 6;
  Codec.write_uint w (1 lsl 30);
  expect_err "huge object count" (Codec.contents w);
  (* nesting beyond the depth cap raises, it does not blow the stack *)
  let w = Codec.writer () in
  for _ = 1 to 1100 do
    Codec.write_u8 w 5;
    Codec.write_uint w 1
  done;
  Codec.write_u8 w 0;
  expect_err "depth bomb" (Codec.contents w);
  let w = Codec.writer () in
  Codec.write_u8 w 42;
  expect_err "unknown tag" (Codec.contents w)

let wire_requests =
  [
    { Protocol.id = Jsonx.Num 1.0; req_id = None; deadline_ms = None; call = Protocol.Stats };
    { Protocol.id = Jsonx.Num 2.0; req_id = None; deadline_ms = None; call = Protocol.Health };
    {
      Protocol.id = Jsonx.Str "s";
      req_id = Some "cli-2a-7";
      deadline_ms = None;
      call = Protocol.Shutdown;
    };
    {
      Protocol.id = Jsonx.Str "x";
      req_id = Some "chaos-42";
      deadline_ms = Some 250.0;
      call =
        Protocol.Run_mc
          { circuit = Protocol.Named "c17"; sampler = Protocol.Kle_qmc; r = Some 12;
            seed = 7; n = 100; batch = Some 64; full = true };
    };
    {
      Protocol.id = Jsonx.Null;
      req_id = None;
      deadline_ms = None;
      call = Protocol.Prepare { circuit = Protocol.Bench_text tiny_bench; r = None };
    };
    {
      Protocol.id = Jsonx.List [ Jsonx.Num 1.0; Jsonx.Str "b" ];
      req_id = None;
      deadline_ms = None;
      call = Protocol.Compare { circuit = Protocol.Named "c432"; r = Some 3; seed = -2; n = 9 };
    };
    {
      Protocol.id = Jsonx.Num 7.0;
      req_id = Some "edit-1";
      deadline_ms = None;
      call =
        Protocol.Retime
          { circuit = Protocol.Named "c17"; r = Some 10; n_blocks = Some 3;
            edit = Some { Protocol.gate = 5; kind = "nor2" } };
    };
    {
      Protocol.id = Jsonx.Num 8.0;
      req_id = None;
      deadline_ms = None;
      call =
        Protocol.Retime
          { circuit = Protocol.Bench_text tiny_bench; r = None; n_blocks = None;
            edit = None };
    };
  ]

let test_wire_request_roundtrip () =
  List.iter
    (fun request ->
      (match Wire.unframe (Wire.encode_request request) with
      | Error _ -> Alcotest.fail "self-unframe failed"
      | Ok payload -> (
          match Wire.decode_request payload with
          | Ok back -> Alcotest.(check bool) "binary roundtrip" true (back = request)
          | Error rej ->
              Alcotest.failf "binary decode failed: %s %s"
                (Protocol.error_code_name rej.Protocol.code) rej.Protocol.message));
      (* and the JSON encoder agrees with the JSON decoder *)
      match Protocol.decode (Protocol.encode_request request) with
      | Ok back -> Alcotest.(check bool) "json roundtrip" true (back = request)
      | Error rej ->
          Alcotest.failf "json decode failed: %s %s"
            (Protocol.error_code_name rej.Protocol.code) rej.Protocol.message)
    wire_requests

let test_wire_request_adversarial () =
  let payload_of request =
    match Wire.unframe (Wire.encode_request request) with
    | Ok p -> p
    | Error _ -> Alcotest.fail "self-frame failed"
  in
  let code_of payload =
    match Wire.decode_request payload with
    | Ok _ -> Alcotest.fail "malformed request accepted"
    | Error rej -> Protocol.error_code_name rej.Protocol.code
  in
  let stats_req =
    { Protocol.id = Jsonx.Num 1.0; req_id = None; deadline_ms = None; call = Protocol.Stats }
  in
  let stats = payload_of stats_req in
  (* unknown method tag (the method tag is the last payload byte) *)
  let b = Bytes.of_string stats in
  Bytes.set b (Bytes.length b - 1) '\xee';
  Alcotest.(check string) "unknown method"
    (Protocol.error_code_name Protocol.Unknown_method)
    (code_of (Bytes.to_string b));
  Alcotest.(check string) "truncated body"
    (Protocol.error_code_name Protocol.Invalid_request)
    (code_of (String.sub stats 0 (String.length stats - 1)));
  Alcotest.(check string) "trailing bytes"
    (Protocol.error_code_name Protocol.Invalid_request)
    (code_of (stats ^ "zz"));
  Alcotest.(check string) "undecodable id"
    (Protocol.error_code_name Protocol.Invalid_request)
    (code_of "\xee");
  (* params are validated on the binary wire too *)
  let run_mc n =
    {
      Protocol.id = Jsonx.Num 1.0;
      req_id = None;
      deadline_ms = None;
      call =
        Protocol.Run_mc
          { circuit = Protocol.Named "c17"; sampler = Protocol.Kle; r = None; seed = 0;
            n; batch = None; full = false };
    }
  in
  Alcotest.(check string) "n = 0 rejected"
    (Protocol.error_code_name Protocol.Bad_params)
    (code_of (payload_of (run_mc 0)))

let test_wire_response_roundtrip () =
  let payload =
    Jsonx.Obj
      [
        ("worst_mean", Jsonx.Num 1.5);
        ("endpoint_mean", Jsonx.List [ Jsonx.Num 0.25; Jsonx.Num 2.0 ]);
      ]
  in
  (match Wire.unframe (Wire.ok_response ~id:(Jsonx.Num 3.0) payload) with
  | Ok p -> (
      match Wire.decode_response p with
      | Ok (Jsonx.Num 3.0, None, Ok back) ->
          Alcotest.(check string) "ok payload" (Jsonx.to_string payload)
            (Jsonx.to_string back)
      | _ -> Alcotest.fail "ok response decode")
  | Error _ -> Alcotest.fail "ok response unframe");
  (match
     Wire.unframe
       (Wire.ok_response ~id:(Jsonx.Num 4.0) ~req_id:"cli-1-2" payload)
   with
  | Ok p -> (
      match Wire.decode_response p with
      | Ok (Jsonx.Num 4.0, Some "cli-1-2", Ok _) -> ()
      | _ -> Alcotest.fail "ok response with req_id decode")
  | Error _ -> Alcotest.fail "ok response with req_id unframe");
  (match
     Wire.unframe (Wire.error_response ~id:(Jsonx.Str "a") Protocol.Overloaded "queue full")
   with
  | Ok p -> (
      match Wire.decode_response p with
      | Ok (Jsonx.Str "a", None, Error (Protocol.Overloaded, "queue full")) -> ()
      | _ -> Alcotest.fail "error response decode")
  | Error _ -> Alcotest.fail "error response unframe");
  match Wire.decode_response "\xee" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage response accepted"

(* ---------- cross-wire / cross-shard helpers ---------- *)

let mc_request ?(id = 1.0) ?req_id ?(seed = 3) ?(n = 24) ?(full = false) () =
  {
    Protocol.id = Jsonx.Num id;
    req_id;
    deadline_ms = None;
    call =
      Protocol.Run_mc
        { circuit = Protocol.Bench_text tiny_bench; sampler = Protocol.Kle; r = None;
          seed; n; batch = None; full };
  }

(* the statistics of an mc payload as IEEE-754 bit patterns (cache-tier and
   timing fields vary run to run; the numbers must not) *)
let mc_stat_bits payload =
  let bits name =
    Option.map Int64.bits_of_float (Option.bind (Jsonx.member name payload) Jsonx.as_num)
  in
  let vec name =
    match Jsonx.member name payload with
    | Some (Jsonx.List l) ->
        List.map (function Jsonx.Num v -> Int64.bits_of_float v | _ -> Int64.minus_one) l
    | _ -> []
  in
  (bits "worst_mean", bits "worst_sigma", vec "endpoint_mean", vec "endpoint_sigma")

let sync_call_binary server request =
  let payload =
    match Wire.unframe (Wire.encode_request request) with
    | Ok p -> p
    | Error _ -> Alcotest.fail "self-frame failed"
  in
  let m = Mutex.create () and c = Condition.create () in
  let slot = ref None in
  Server.submit_wire server ~wire:`Binary payload ~reply:(fun r ->
      Mutex.protect m (fun () ->
          slot := Some r;
          Condition.signal c));
  let frame =
    Mutex.protect m (fun () ->
        while !slot = None do
          Condition.wait c m
        done;
        Option.get !slot)
  in
  match Wire.unframe frame with
  | Error _ -> Alcotest.fail "binary reply is not a frame"
  | Ok p -> (
      match Wire.decode_response p with
      | Error msg -> Alcotest.failf "binary reply decode: %s" msg
      | Ok (id, _req_id, result) -> (id, result))

let test_wire_cross_identity () =
  with_server @@ fun server ->
  let request = mc_request ~full:true () in
  let json_payload = expect_ok (sync_call server (Protocol.encode_request request)) in
  let id, result = sync_call_binary server request in
  Alcotest.(check bool) "id echoed" true (id = Jsonx.Num 1.0);
  let binary_payload =
    match result with
    | Ok p -> p
    | Error (code, msg) ->
        Alcotest.failf "binary call failed: %s %s" (Protocol.error_code_name code) msg
  in
  (match mc_stat_bits json_payload with
  | Some _, Some _, _ :: _, _ :: _ -> ()
  | _ -> Alcotest.fail "expected a full mc payload");
  Alcotest.(check bool) "bit-identical statistics across wires" true
    (mc_stat_bits json_payload = mc_stat_bits binary_payload);
  (* typed errors survive the binary wire too *)
  let _, err =
    sync_call_binary server
      {
        Protocol.id = Jsonx.Num 9.0;
        req_id = None;
        deadline_ms = None;
        call =
          Protocol.Run_mc
            { circuit = Protocol.Named "no-such-circuit"; sampler = Protocol.Cholesky;
              r = None; seed = 1; n = 8; batch = None; full = false };
      }
  in
  match err with
  | Error (Protocol.Netlist_error, msg) ->
      Alcotest.(check bool) "names the circuit" true (contains ~sub:"no-such-circuit" msg)
  | _ -> Alcotest.fail "expected netlist_error over the binary wire"

(* ---------- batching ---------- *)

let test_batch_collector () =
  let lock = Mutex.create () in
  let flushed = ref [] in
  let record key items = Mutex.protect lock (fun () -> flushed := (key, items) :: !flushed) in
  let snapshot () = Mutex.protect lock (fun () -> List.rev !flushed) in
  let groups = Alcotest.(list (pair string (list int))) in
  let b = Batch.create ~window_s:0.2 ~max_batch:3 ~flush:record in
  Batch.add b ~key:"a" 1;
  Batch.add b ~key:"a" 2;
  Alcotest.(check groups) "window still open" [] (snapshot ());
  Batch.add b ~key:"a" 3;
  (* a full group flushes synchronously on the adding thread *)
  Alcotest.(check groups) "full group flushed" [ ("a", [ 1; 2; 3 ]) ] (snapshot ());
  Batch.add b ~key:"a" 4;
  Batch.add b ~key:"b" 5;
  (* window expiry flushes on the timer thread, oldest group first *)
  let rec wait n =
    if List.length (snapshot ()) >= 3 then ()
    else if n = 0 then Alcotest.fail "window never flushed"
    else begin
      Thread.delay 0.01;
      wait (n - 1)
    end
  in
  wait 600;
  Alcotest.(check groups) "expired groups in arrival order"
    [ ("a", [ 1; 2; 3 ]); ("a", [ 4 ]); ("b", [ 5 ]) ]
    (snapshot ());
  Batch.add b ~key:"c" 6;
  Batch.flush_all b;
  Alcotest.(check groups) "flush_all drains open groups"
    [ ("a", [ 1; 2; 3 ]); ("a", [ 4 ]); ("b", [ 5 ]); ("c", [ 6 ]) ]
    (snapshot ());
  Batch.shutdown b;
  Batch.shutdown b;
  (* after shutdown an add degrades to an immediate singleton flush *)
  Batch.add b ~key:"d" 7;
  Alcotest.(check groups) "post-shutdown singleton"
    [ ("a", [ 1; 2; 3 ]); ("a", [ 4 ]); ("b", [ 5 ]); ("c", [ 6 ]); ("d", [ 7 ]) ]
    (snapshot ());
  let s = Batch.stats b in
  Alcotest.(check int) "appended" 7 s.Batch.appended;
  Alcotest.(check int) "flushed groups" 5 s.Batch.flushed_groups;
  Alcotest.(check int) "max group" 3 s.Batch.max_group;
  (* window_s = 0 disables coalescing: every add is an immediate singleton *)
  let direct = ref [] in
  let b0 =
    Batch.create ~window_s:0.0 ~max_batch:8 ~flush:(fun k items ->
        direct := (k, items) :: !direct)
  in
  Batch.add b0 ~key:"x" 1;
  Batch.add b0 ~key:"x" 2;
  Alcotest.(check groups) "disabled window" [ ("x", [ 2 ]); ("x", [ 1 ]) ] !direct;
  Batch.shutdown b0

let test_server_batching_bit_identity () =
  let seeds = [ 11; 12; 13; 14 ] in
  let request seed = mc_request ~id:(float_of_int seed) ~seed ~full:true () in
  let reference =
    with_server @@ fun plain ->
    List.map
      (fun s ->
        mc_stat_bits (expect_ok (sync_call plain (Protocol.encode_request (request s)))))
      seeds
  in
  let config =
    { test_config with Server.batch_window_s = 0.05; Server.batch_max = List.length seeds }
  in
  with_server ~config @@ fun batched ->
  let m = Mutex.create () and c = Condition.create () in
  let replies = Hashtbl.create 8 in
  List.iter
    (fun seed ->
      Server.submit batched (Protocol.encode_request (request seed)) ~reply:(fun line ->
          Mutex.protect m (fun () ->
              Hashtbl.replace replies seed line;
              Condition.signal c)))
    seeds;
  Mutex.protect m (fun () ->
      while Hashtbl.length replies < List.length seeds do
        Condition.wait c m
      done);
  let got = List.map (fun s -> mc_stat_bits (expect_ok (Hashtbl.find replies s))) seeds in
  Alcotest.(check bool) "batched results bit-identical to unbatched" true (got = reference);
  (* the collector actually grouped: four same-key submits with batch_max = 4
     flush as one group of four (on the fourth submit's thread) *)
  let stats = expect_ok (sync_call batched {|{"id":0,"method":"stats"}|}) in
  match Option.bind (Jsonx.member "batch" stats) (Jsonx.member "max_group") with
  | Some (Jsonx.Num g) when g >= 2.0 -> ()
  | v ->
      Alcotest.failf "expected grouped batch stats, got %s"
        (match v with Some j -> Jsonx.to_string j | None -> "absent")

(* ---------- router ---------- *)

let sync_router_call router line =
  let m = Mutex.create () and c = Condition.create () in
  let slot = ref None in
  Router.submit router ~wire:`Json line ~reply:(fun r ->
      Mutex.protect m (fun () ->
          slot := Some r;
          Condition.signal c));
  Mutex.protect m (fun () ->
      while !slot = None do
        Condition.wait c m
      done;
      Option.get !slot)

let test_router_routing_key () =
  let req call = { Protocol.id = Jsonx.Null; req_id = None; deadline_ms = None; call } in
  let run_mc r =
    req
      (Protocol.Run_mc
         { circuit = Protocol.Named "c17"; sampler = Protocol.Kle; r; seed = 99; n = 4;
           batch = None; full = false })
  in
  let k_prepare =
    Router.routing_key (req (Protocol.Prepare { circuit = Protocol.Named "c17"; r = Some 3 }))
  in
  let k_run = Router.routing_key (run_mc (Some 3)) in
  Alcotest.(check bool) "prepare and run_mc share the model-spec key" true
    (k_prepare <> None && k_prepare = k_run);
  Alcotest.(check bool) "truncation is part of the key" true
    (k_run <> Router.routing_key (run_mc (Some 4)));
  let k_bench call = Router.routing_key (req call) in
  Alcotest.(check bool) "bench text keys by content hash" true
    (k_bench (Protocol.Prepare { circuit = Protocol.Bench_text tiny_bench; r = None })
     = k_bench
         (Protocol.Compare
            { circuit = Protocol.Bench_text tiny_bench; r = None; seed = 1; n = 2 }));
  List.iter
    (fun call ->
      Alcotest.(check bool) "control calls are unrouted" true
        (Router.routing_key (req call) = None))
    [ Protocol.Stats; Protocol.Health; Protocol.Shutdown ]

let test_router_ring () =
  with_server @@ fun s1 ->
  with_server @@ fun s2 ->
  let router = Router.create [ Router.backend_of_server s1; Router.backend_of_server s2 ] in
  let counts = Array.make 2 0 in
  for i = 0 to 499 do
    let key = Printf.sprintf "name:c%d;r=auto" i in
    let shard = Router.shard_of router key in
    Alcotest.(check int) "stable assignment" shard (Router.shard_of router key);
    counts.(shard) <- counts.(shard) + 1
  done;
  Alcotest.(check bool)
    (Printf.sprintf "balanced (%d/%d)" counts.(0) counts.(1))
    true
    (counts.(0) > 100 && counts.(1) > 100)

let test_router_cross_shard_identity () =
  with_server @@ fun direct ->
  with_server @@ fun s1 ->
  with_server @@ fun s2 ->
  let router =
    Router.create
      [
        Router.backend_of_server ~describe:"shard-0" s1;
        Router.backend_of_server ~describe:"shard-1" s2;
      ]
  in
  let line = Protocol.encode_request (mc_request ~full:true ()) in
  let want = mc_stat_bits (expect_ok (sync_call direct line)) in
  let got = mc_stat_bits (expect_ok (sync_router_call router line)) in
  Alcotest.(check bool) "bit-identical through the router" true (got = want);
  (* health and stats aggregate every shard plus router counters *)
  let health = expect_ok (sync_router_call router {|{"id":0,"method":"health"}|}) in
  Alcotest.(check (option bool)) "healthy" (Some true)
    (Option.bind (Jsonx.member "healthy" health) Jsonx.as_bool);
  Alcotest.(check (option int)) "shards" (Some 2)
    (Option.bind (Jsonx.member "shards" health) Jsonx.as_int);
  (match Jsonx.member "shard_health" health with
  | Some (Jsonx.List [ _; _ ]) -> ()
  | _ -> Alcotest.fail "expected a per-shard health list");
  let stats = expect_ok (sync_router_call router {|{"id":0,"method":"stats"}|}) in
  (match Option.bind (Jsonx.member "router" stats) (Jsonx.member "forwarded") with
  | Some (Jsonx.Num f) when f >= 1.0 -> ()
  | _ -> Alcotest.fail "router counters missing from stats");
  (* shutdown broadcasts to every shard and drains the router *)
  let bye = expect_ok (sync_router_call router {|{"id":0,"method":"shutdown"}|}) in
  Alcotest.(check (option bool)) "shutting down" (Some true)
    (Option.bind (Jsonx.member "shutting_down" bye) Jsonx.as_bool);
  Alcotest.(check bool) "router drains" true (Router.shutdown_requested router);
  ignore (expect_error (sync_router_call router line) Protocol.Shutting_down);
  Alcotest.(check bool) "shards saw the shutdown" true
    (Server.shutdown_requested s1 && Server.shutdown_requested s2)

let test_router_shed_and_failover () =
  let request = mc_request () in
  let line = Protocol.encode_request request in
  let key = Option.get (Router.routing_key request) in
  (* failover: the key's owner is unhealthy, so its replica serves *)
  let down = [| false; false |] in
  let backend i =
    {
      Router.send =
        (fun _request ~reply ->
          reply (Ok (Jsonx.Obj [ ("served_by", Jsonx.Num (float_of_int i)) ])));
      healthy = (fun () -> not down.(i));
      describe = Printf.sprintf "shard-%d" i;
    }
  in
  let router = Router.create [ backend 0; backend 1 ] in
  let owner = Router.shard_of router key in
  down.(owner) <- true;
  let payload = expect_ok (sync_router_call router line) in
  Alcotest.(check (option int)) "replica served" (Some (1 - owner))
    (Option.bind (Jsonx.member "served_by" payload) Jsonx.as_int);
  Alcotest.(check bool) "retry counted" true ((Router.stats router).Router.retried >= 1);
  (* both replicas down: a typed internal error, never a hang *)
  down.(0) <- true;
  down.(1) <- true;
  ignore (expect_error (sync_router_call router line) Protocol.Internal_error);
  (* a backend whose send raises also fails over to the replica *)
  let raised = ref 0 in
  let backend2 i =
    if i = owner then
      {
        Router.send =
          (fun _request ~reply:_ ->
            incr raised;
            failwith "shard connection lost");
        healthy = (fun () -> true);
        describe = "raiser";
      }
    else backend i
  in
  down.(0) <- false;
  down.(1) <- false;
  let router2 = Router.create [ backend2 0; backend2 1 ] in
  let payload2 = expect_ok (sync_router_call router2 line) in
  Alcotest.(check (option int)) "failover after raise" (Some (1 - owner))
    (Option.bind (Jsonx.member "served_by" payload2) Jsonx.as_int);
  Alcotest.(check bool) "raise recorded" true
    ((Router.stats router2).Router.shard_errors >= 1 && !raised = 1);
  (* shed, not spread: the owner at capacity answers overloaded immediately
     instead of spilling the key onto the other shard *)
  let parked = ref [] in
  let slow i =
    if i = owner then
      {
        Router.send = (fun _request ~reply -> parked := reply :: !parked);
        healthy = (fun () -> true);
        describe = "parked";
      }
    else backend i
  in
  let config = { Router.default_config with Router.max_inflight_per_shard = 1 } in
  let router3 = Router.create ~config [ slow 0; slow 1 ] in
  let first = ref None in
  Router.submit router3 ~wire:`Json line ~reply:(fun r -> first := Some r);
  Alcotest.(check int) "first request forwarded and parked" 1 (List.length !parked);
  let msg = expect_error (sync_router_call router3 line) Protocol.Overloaded in
  Alcotest.(check bool) "names the capacity" true (contains ~sub:"capacity" msg);
  Alcotest.(check bool) "shed counted" true ((Router.stats router3).Router.shed >= 1);
  (* releasing the parked request completes the first call normally *)
  (match !parked with
  | [ release ] -> release (Ok (Jsonx.Obj [ ("served_by", Jsonx.Num (float_of_int owner)) ]))
  | _ -> Alcotest.fail "expected exactly one parked request");
  match !first with
  | Some reply_line -> ignore (expect_ok reply_line)
  | None -> Alcotest.fail "parked reply never delivered"

let test_client_binary_wire () =
  with_server @@ fun server ->
  let transport message ~reply =
    (* the client ships whole frames; Server.submit_wire takes the payload *)
    match Wire.unframe message with
    | Ok payload -> Server.submit_wire server ~wire:`Binary payload ~reply
    | Error _ -> Alcotest.fail "client sent a malformed frame"
  in
  let bclient = Serve.Client.create ~wire:`Binary transport in
  Alcotest.(check bool) "wire knob" true (Serve.Client.wire bclient = `Binary);
  let jclient = Serve.Client.create (fun line ~reply -> Server.submit server line ~reply) in
  let request = mc_request ~full:true () in
  let call client =
    match Serve.Client.call_request client request with
    | Ok payload -> payload
    | Error e -> Alcotest.failf "call failed: %s" (Serve.Client.failure_to_string e)
  in
  ignore (call jclient) (* warm, so both measured calls hit the same tier *);
  Alcotest.(check bool) "bit-identical payload across client wires" true
    (mc_stat_bits (call jclient) = mc_stat_bits (call bclient))

(* the acceptance bar: a fault storm (worker crashes, read errors, torn
   writes, latency; >= 50 injected) completes with zero wrong results,
   every failure typed, and the server back to healthy *)
let test_server_chaos_invariants () =
  let store_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "kle-test-chaos.%d" (Unix.getpid ()))
  in
  let cfg =
    {
      Serve.Chaos.default_config with
      Serve.Chaos.requests = 60;
      mc_samples = 8;
      crash_period = 10;
      crash_limit = 4;
      read_error_period = 4;
      short_read_period = 6;
      torn_write_period = 2;
      latency_period = 2;
      latency_ms = 0.05;
    }
  in
  let report =
    Fun.protect
      ~finally:(fun () ->
        try
          Array.iter
            (fun f -> Sys.remove (Filename.concat store_dir f))
            (Sys.readdir store_dir);
          Unix.rmdir store_dir
        with Sys_error _ | Unix.Unix_error _ -> ())
      (fun () -> Serve.Chaos.run ~store_dir cfg)
  in
  Alcotest.(check bool)
    (Printf.sprintf "fault floor (got %d)" report.Serve.Chaos.faults_injected)
    true
    (report.Serve.Chaos.faults_injected >= 50);
  Alcotest.(check bool) "workers were crashed" true
    (report.Serve.Chaos.worker_restarts >= 1);
  (* every reply — including retried and failed-over ones — carried the
     originating request's correlation ID exactly once *)
  Alcotest.(check int) "req_id violations" 0 report.Serve.Chaos.id_violations;
  (match Serve.Chaos.violations ~min_faults:50 report with
  | [] -> ()
  | v ->
      Alcotest.failf "chaos violations: %s (report: %s)" (String.concat "; " v)
        (Serve.Chaos.report_to_string report))

(* the same storm through the router path: two shards sharing one store,
   shard 0's backend blacking out periodically — crash + restart + replica
   failover all covered by the zero-wrong-results invariant *)
let test_router_chaos_invariants () =
  let store_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "kle-test-chaos-router.%d" (Unix.getpid ()))
  in
  let cfg =
    {
      Serve.Chaos.default_config with
      Serve.Chaos.requests = 60;
      mc_samples = 8;
      crash_period = 10;
      crash_limit = 4;
      read_error_period = 4;
      short_read_period = 6;
      torn_write_period = 2;
      latency_period = 2;
      latency_ms = 0.05;
      router_shards = 2;
    }
  in
  let report =
    Fun.protect
      ~finally:(fun () ->
        try
          Array.iter
            (fun f -> Sys.remove (Filename.concat store_dir f))
            (Sys.readdir store_dir);
          Unix.rmdir store_dir
        with Sys_error _ | Unix.Unix_error _ -> ())
      (fun () -> Serve.Chaos.run ~store_dir cfg)
  in
  Alcotest.(check bool)
    (Printf.sprintf "fault floor (got %d)" report.Serve.Chaos.faults_injected)
    true
    (report.Serve.Chaos.faults_injected >= 50);
  let blackouts =
    List.fold_left
      (fun acc c -> if c.Serve.Chaos.fault = "blackout" then acc + c.Serve.Chaos.fired else acc)
      0 report.Serve.Chaos.fault_counts
  in
  Alcotest.(check bool) "shard 0 blacked out" true (blackouts >= 1);
  match Serve.Chaos.violations ~min_faults:50 report with
  | [] -> ()
  | v ->
      Alcotest.failf "router chaos violations: %s (report: %s)" (String.concat "; " v)
        (Serve.Chaos.report_to_string report)

(* ---------- telemetry: req_id propagation, metrics, debug ---------- *)

let count_substring ~needle hay =
  let n = String.length needle in
  let rec scan from acc =
    match String.index_from_opt hay from needle.[0] with
    | None -> acc
    | Some i ->
        if i + n <= String.length hay && String.sub hay i n = needle then
          scan (i + 1) (acc + 1)
        else scan (i + 1) acc
  in
  if n = 0 then 0 else scan 0 0

(* recording happens after the reply is written, so a test that asserts on
   telemetry right after a reply must wait for the record to land *)
let await ?(tries = 500) what pred =
  let rec go n =
    if pred () then ()
    else if n = 0 then Alcotest.failf "%s never became true" what
    else begin
      Thread.delay 0.005;
      go (n - 1)
    end
  in
  go tries

let test_server_req_id_echo_json () =
  with_server @@ fun server ->
  let reply = sync_call server {|{"id":1,"req_id":"cli-aa-1","method":"stats"}|} in
  Alcotest.(check int) "echoed exactly once" 1
    (count_substring ~needle:{|"req_id"|} reply);
  Alcotest.(check (option string)) "echoed verbatim" (Some "cli-aa-1")
    (Option.bind (Jsonx.member "req_id" (reply_json reply)) Jsonx.as_str);
  (* no req_id in, none out: server-minted IDs are telemetry-only *)
  let reply = sync_call server {|{"id":2,"method":"stats"}|} in
  Alcotest.(check int) "no echo without req_id" 0
    (count_substring ~needle:{|"req_id"|} reply);
  (* error replies echo too *)
  let reply = sync_call server {|{"id":3,"req_id":"cli-aa-3","method":"warp"}|} in
  Alcotest.(check (option string)) "echo on error" (Some "cli-aa-3")
    (Option.bind (Jsonx.member "req_id" (reply_json reply)) Jsonx.as_str)

let sync_call_binary_full server request =
  let payload =
    match Wire.unframe (Wire.encode_request request) with
    | Ok p -> p
    | Error _ -> Alcotest.fail "self-frame failed"
  in
  let m = Mutex.create () and c = Condition.create () in
  let slot = ref None in
  Server.submit_wire server ~wire:`Binary payload ~reply:(fun r ->
      Mutex.protect m (fun () ->
          slot := Some r;
          Condition.signal c));
  let frame =
    Mutex.protect m (fun () ->
        while !slot = None do
          Condition.wait c m
        done;
        Option.get !slot)
  in
  match Wire.unframe frame with
  | Error _ -> Alcotest.fail "binary reply is not a frame"
  | Ok p -> (
      match Wire.decode_response p with
      | Error msg -> Alcotest.failf "binary reply decode: %s" msg
      | Ok triple -> triple)

let test_server_req_id_echo_binary () =
  with_server @@ fun server ->
  (match sync_call_binary_full server (mc_request ~req_id:"cli-bb-1" ()) with
  | _, Some "cli-bb-1", Ok _ -> ()
  | _, got, _ ->
      Alcotest.failf "binary echo: %s" (Option.value ~default:"<none>" got));
  match sync_call_binary_full server (mc_request ~id:2.0 ()) with
  | _, None, Ok _ -> ()
  | _, Some got, _ -> Alcotest.failf "unexpected binary echo %S" got
  | _, None, Error (code, msg) ->
      Alcotest.failf "binary call failed: %s %s" (Protocol.error_code_name code) msg

let test_wire_v1_compat () =
  (* writers emit the base version when there is no req_id to carry, so
     replies to old clients are byte-compatible; the trailing section only
     appears (as version 2) when a correlation ID is present *)
  let v1 = Wire.ok_response ~id:(Jsonx.Num 1.0) (Jsonx.Obj []) in
  Alcotest.(check char) "v1 when no req_id" '\x01' v1.[2];
  let v2 = Wire.ok_response ~id:(Jsonx.Num 1.0) ~req_id:"x" (Jsonx.Obj []) in
  Alcotest.(check char) "v2 with req_id" '\x02' v2.[2];
  (match Wire.unframe v1 with
  | Ok p -> (
      match Wire.decode_response p with
      | Ok (_, None, Ok _) -> ()
      | _ -> Alcotest.fail "v1 response decode")
  | Error _ -> Alcotest.fail "v1 unframe");
  let r1 = Wire.encode_request (mc_request ()) in
  Alcotest.(check char) "request v1 without req_id" '\x01' r1.[2];
  let r2 = Wire.encode_request (mc_request ~req_id:"cli-1-1" ()) in
  Alcotest.(check char) "request v2 with req_id" '\x02' r2.[2];
  (* a v1 request payload (no trailing section) decodes with req_id None *)
  match Wire.unframe r1 with
  | Ok p -> (
      match Wire.decode_request p with
      | Ok { req_id = None; _ } -> ()
      | _ -> Alcotest.fail "v1 request decode")
  | Error _ -> Alcotest.fail "v1 request unframe"

let test_client_generates_req_id () =
  with_server @@ fun server ->
  let sent = ref [] in
  let transport line ~reply =
    sent := line :: !sent;
    Server.submit server line ~reply
  in
  let client = Serve.Client.create transport in
  (match Serve.Client.call_request client (mc_request ()) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "call failed: %s" (Serve.Client.failure_to_string e));
  match !sent with
  | [ line ] -> (
      match
        Option.bind (Result.to_option (Jsonx.parse line)) (fun v ->
            Option.bind (Jsonx.member "req_id" v) Jsonx.as_str)
      with
      | Some rid ->
          Alcotest.(check bool)
            (Printf.sprintf "generated id %S has the cli- prefix" rid)
            true
            (String.length rid > 4 && String.sub rid 0 4 = "cli-")
      | None -> Alcotest.fail "client sent no req_id")
  | lines -> Alcotest.failf "expected one transport send, saw %d" (List.length lines)

let test_server_metrics_method () =
  with_server @@ fun server ->
  ignore (expect_ok (sync_call server (run_mc_line ())));
  await "first request recorded" (fun () ->
      Util.Histogram.count (Serve.Telemetry.total_histogram (Server.telemetry server)) >= 1);
  let mp = expect_ok (sync_call server {|{"id":2,"method":"metrics"}|}) in
  List.iter
    (fun field ->
      Alcotest.(check bool) (field ^ " present") true (Jsonx.member field mp <> None))
    [ "counters"; "stages"; "histograms"; "prometheus" ];
  (match
     Option.bind (Option.bind (Jsonx.member "counters" mp) (Jsonx.member "requests"))
       Jsonx.as_int
   with
  | Some n when n >= 1 -> ()
  | _ -> Alcotest.fail "requests counter missing or zero");
  let total = Option.bind (Jsonx.member "stages" mp) (Jsonx.member "total") in
  let q name =
    match Option.bind (Option.bind total (Jsonx.member name)) Jsonx.as_num with
    | Some v -> v
    | None -> Alcotest.failf "stages.total.%s missing" name
  in
  Alcotest.(check bool) "total count >= 1" true (q "count" >= 1.0);
  Alcotest.(check bool) "p50 <= p99" true (q "p50_ms" <= q "p99_ms");
  Alcotest.(check bool) "p99 <= p999" true (q "p99_ms" <= q "p999_ms");
  let prom =
    match Option.bind (Jsonx.member "prometheus" mp) Jsonx.as_str with
    | Some s -> s
    | None -> Alcotest.fail "prometheus text missing"
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("prometheus has " ^ needle) true (contains ~sub:needle prom))
    [
      "ssta_requests"; "ssta_cache_misses";
      {|ssta_stage_latency_seconds{stage="queue_wait"|};
      {|ssta_stage_latency_seconds{stage="compute"|};
      {|ssta_stage_latency_seconds_count{stage="total"}|};
    ]

let test_server_debug_ring () =
  (* slow_ms = 0 admits every request, so the ring holds the most recent *)
  with_server @@ fun server ->
  ignore (expect_ok (sync_call server {|{"id":1,"req_id":"cli-dd-1","method":"stats"}|}));
  await "ring admission" (fun () ->
      match
        Option.bind
          (Jsonx.member "slow_requests"
             (expect_ok (sync_call server {|{"id":2,"method":"debug"}|})))
          (function Jsonx.List l -> Some l | _ -> None)
      with
      | Some (_ :: _) -> true
      | _ -> false);
  let dp = expect_ok (sync_call server {|{"id":3,"method":"debug"}|}) in
  let entries =
    match Jsonx.member "slow_requests" dp with
    | Some (Jsonx.List l) -> l
    | _ -> Alcotest.fail "slow_requests missing"
  in
  let has_dd1 =
    List.exists
      (fun e ->
        Option.bind (Jsonx.member "req_id" e) Jsonx.as_str = Some "cli-dd-1"
        && Option.bind (Jsonx.member "stages_ms" e) (Jsonx.member "compute") <> None
        && Option.bind (Jsonx.member "stages_ms" e) (Jsonx.member "queue_wait") <> None)
      entries
  in
  Alcotest.(check bool) "entry carries req_id + per-stage breakdown" true has_dd1

let test_server_json_request_log () =
  let lock = Mutex.create () in
  let logs = ref [] in
  let config =
    {
      test_config with
      Server.request_log = Some (fun j -> Mutex.protect lock (fun () -> logs := j :: !logs));
    }
  in
  with_server ~config @@ fun server ->
  ignore (expect_ok (sync_call server {|{"id":1,"req_id":"cli-log-1","method":"stats"}|}));
  await "log line emitted" (fun () ->
      Mutex.protect lock (fun () ->
          List.exists
            (fun j ->
              Option.bind (Jsonx.member "req_id" j) Jsonx.as_str = Some "cli-log-1"
              && Jsonx.member "total_ms" j <> None
              && Option.bind (Jsonx.member "ok" j) Jsonx.as_bool = Some true)
            !logs))

let test_server_batch_wait_recorded () =
  let config =
    { test_config with Server.batch_window_s = 0.05; Server.batch_max = 4; Server.workers = 2 }
  in
  with_server ~config @@ fun server ->
  let m = Mutex.create () and c = Condition.create () in
  let got = ref 0 in
  let request seed = mc_request ~id:(float_of_int seed) ~seed () in
  List.iter
    (fun seed ->
      Server.submit server (Protocol.encode_request (request seed)) ~reply:(fun line ->
          ignore (expect_ok line);
          Mutex.protect m (fun () ->
              incr got;
              Condition.signal c)))
    [ 21; 22; 23; 24 ];
  Mutex.protect m (fun () ->
      while !got < 4 do
        Condition.wait c m
      done);
  let h = Serve.Telemetry.stage_histogram (Server.telemetry server) Serve.Telemetry.Batch_wait in
  await "batch_wait recorded for every member" (fun () -> Util.Histogram.count h >= 4);
  (* members coalesced behind the window actually waited *)
  Alcotest.(check bool) "some member waited" true (Util.Histogram.max_value h > 0)

let test_router_merged_metrics () =
  with_server @@ fun s1 ->
  with_server @@ fun s2 ->
  let router =
    Router.create
      [
        Router.backend_of_server ~describe:"shard-0" s1;
        Router.backend_of_server ~describe:"shard-1" s2;
      ]
  in
  ignore (expect_ok (sync_router_call router (run_mc_line ())));
  ignore (expect_ok (sync_router_call router (run_mc_line ~id:2 ~sampler:"kle" ~n:16 ())));
  await "shard recording landed" (fun () ->
      Util.Histogram.count (Serve.Telemetry.total_histogram (Server.telemetry s1))
      + Util.Histogram.count (Serve.Telemetry.total_histogram (Server.telemetry s2))
      >= 2);
  let mp = expect_ok (sync_router_call router {|{"id":9,"method":"metrics"}|}) in
  Alcotest.(check (option int)) "both shards reporting" (Some 2)
    (Option.bind (Jsonx.member "shards_reporting" mp) Jsonx.as_int);
  let shard_requests server =
    (* every shard also counts the metrics fan-out request itself at submit
       time, so compare against live server counters scraped after *)
    match
      Option.bind
        (Jsonx.member "requests" (expect_ok (sync_call server {|{"id":0,"method":"stats"}|})))
        Jsonx.as_int
    with
    | Some n -> n
    | None -> Alcotest.fail "shard stats missing requests"
  in
  (match Option.bind (Jsonx.member "counters" mp) (Jsonx.member "requests") with
  | Some v -> (
      match Jsonx.as_int v with
      | Some merged ->
          Alcotest.(check bool)
            (Printf.sprintf "merged requests %d sums both shards" merged)
            true
            (merged >= 2 && merged <= shard_requests s1 + shard_requests s2)
      | None -> Alcotest.fail "merged requests not an int")
  | None -> Alcotest.fail "merged counters missing requests");
  (* the merged histogram holds both shards' samples *)
  match
    Option.bind
      (Option.bind (Option.bind (Jsonx.member "stages" mp) (Jsonx.member "total"))
         (Jsonx.member "count"))
      Jsonx.as_int
  with
  | Some n when n >= 2 -> ()
  | v ->
      Alcotest.failf "merged total count: %s"
        (match v with Some n -> string_of_int n | None -> "absent")

let () =
  Alcotest.run "serve"
    [
      ( "jsonx",
        [
          Alcotest.test_case "roundtrip" `Quick test_jsonx_roundtrip;
          Alcotest.test_case "escapes" `Quick test_jsonx_escapes;
          Alcotest.test_case "numbers" `Quick test_jsonx_numbers;
          Alcotest.test_case "control chars + raw bytes" `Quick
            test_jsonx_control_and_bytes;
          Alcotest.test_case "errors" `Quick test_jsonx_errors;
          Alcotest.test_case "member" `Quick test_jsonx_member;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "decode ok" `Quick test_protocol_decode_ok;
          Alcotest.test_case "decode errors" `Quick test_protocol_decode_errors;
          Alcotest.test_case "responses" `Quick test_protocol_responses;
          Alcotest.test_case "unknown params key is typed" `Quick
            test_protocol_unknown_param_key;
        ] );
      ( "wire",
        [
          Alcotest.test_case "frame roundtrip" `Quick test_wire_frame_roundtrip;
          Alcotest.test_case "adversarial headers" `Quick test_wire_adversarial_headers;
          Alcotest.test_case "read_frame" `Quick test_wire_read_frame;
          Alcotest.test_case "jsonx codec" `Quick test_wire_jsonx_codec;
          Alcotest.test_case "jsonx adversarial" `Quick test_wire_jsonx_adversarial;
          Alcotest.test_case "request roundtrip" `Quick test_wire_request_roundtrip;
          Alcotest.test_case "request adversarial" `Quick test_wire_request_adversarial;
          Alcotest.test_case "response roundtrip" `Quick test_wire_response_roundtrip;
          Alcotest.test_case "cross-wire bit identity" `Quick test_wire_cross_identity;
          Alcotest.test_case "client binary wire" `Quick test_client_binary_wire;
        ] );
      ( "batch",
        [
          Alcotest.test_case "collector semantics" `Quick test_batch_collector;
          Alcotest.test_case "batched bit identity" `Quick
            test_server_batching_bit_identity;
        ] );
      ( "router",
        [
          Alcotest.test_case "routing key" `Quick test_router_routing_key;
          Alcotest.test_case "ring balance + stability" `Quick test_router_ring;
          Alcotest.test_case "cross-shard bit identity" `Quick
            test_router_cross_shard_identity;
          Alcotest.test_case "shed + failover" `Quick test_router_shed_and_failover;
          Alcotest.test_case "chaos invariants" `Slow test_router_chaos_invariants;
        ] );
      ( "lru",
        [
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "overwrite + remove" `Quick test_lru_overwrite_and_remove;
          Alcotest.test_case "recency sequence" `Quick test_lru_recency_sequence;
          Alcotest.test_case "matches reference model" `Quick
            test_lru_matches_reference_model;
        ] );
      ( "server",
        [
          Alcotest.test_case "run_mc ok" `Quick test_server_run_mc_ok;
          Alcotest.test_case "cache tiers" `Quick test_server_cache_tiers;
          Alcotest.test_case "typed errors" `Quick test_server_typed_errors;
          Alcotest.test_case "retime end-to-end" `Quick test_server_retime_end_to_end;
          Alcotest.test_case "bench errors are typed" `Quick
            test_server_bench_errors_are_typed;
          Alcotest.test_case "overload backpressure" `Quick test_server_overload_backpressure;
          Alcotest.test_case "deadline exceeded" `Quick test_server_deadline_exceeded;
          Alcotest.test_case "shutdown drains" `Quick test_server_shutdown_drains;
          Alcotest.test_case "stats payload" `Quick test_server_stats_payload;
          Alcotest.test_case "single-flight dedup" `Quick test_server_single_flight;
          Alcotest.test_case "hierarchical factor reuse" `Quick
            test_server_hierarchical_factor_reuse;
          Alcotest.test_case "reply failure survives" `Quick
            test_server_reply_failure_survives;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "req_id echo (json)" `Quick test_server_req_id_echo_json;
          Alcotest.test_case "req_id echo (binary)" `Quick
            test_server_req_id_echo_binary;
          Alcotest.test_case "wire v1 compatibility" `Quick test_wire_v1_compat;
          Alcotest.test_case "client generates req_id" `Quick
            test_client_generates_req_id;
          Alcotest.test_case "metrics method" `Quick test_server_metrics_method;
          Alcotest.test_case "debug ring" `Quick test_server_debug_ring;
          Alcotest.test_case "json request log" `Quick test_server_json_request_log;
          Alcotest.test_case "batch_wait recorded" `Quick
            test_server_batch_wait_recorded;
          Alcotest.test_case "router merges shard metrics" `Quick
            test_router_merged_metrics;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "health payload" `Quick test_server_health_payload;
          Alcotest.test_case "worker restart retries" `Quick
            test_server_worker_restart_retries;
          Alcotest.test_case "poison quarantine" `Quick test_server_poison_quarantine;
          Alcotest.test_case "exactly-once reply" `Quick test_server_exactly_once_reply;
          Alcotest.test_case "drain timeout" `Quick test_server_drain_timeout;
          Alcotest.test_case "chaos invariants" `Slow test_server_chaos_invariants;
        ] );
    ]
