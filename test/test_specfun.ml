let check_close ?(tol = 1e-10) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let check_rel ?(tol = 1e-6) msg expected actual =
  let rel = Float.abs ((actual -. expected) /. expected) in
  if rel > tol then
    Alcotest.failf "%s: expected %.15g, got %.15g (rel err %.2e)" msg expected actual rel

(* ---------- Gamma ---------- *)

let test_gamma_integers () =
  check_close "gamma 1" 1.0 (Specfun.Gamma.gamma 1.0);
  check_close "gamma 2" 1.0 (Specfun.Gamma.gamma 2.0);
  check_close ~tol:1e-9 "gamma 5" 24.0 (Specfun.Gamma.gamma 5.0);
  check_rel ~tol:1e-12 "gamma 10" 362880.0 (Specfun.Gamma.gamma 10.0)

let test_gamma_half () =
  check_rel ~tol:1e-12 "gamma 0.5" (sqrt Float.pi) (Specfun.Gamma.gamma 0.5);
  check_rel ~tol:1e-12 "gamma 1.5" (0.5 *. sqrt Float.pi) (Specfun.Gamma.gamma 1.5)

let test_gamma_recurrence () =
  (* Γ(x+1) = x Γ(x) *)
  List.iter
    (fun x ->
      check_rel ~tol:1e-12 "recurrence"
        (x *. Specfun.Gamma.gamma x)
        (Specfun.Gamma.gamma (x +. 1.0)))
    [ 0.3; 1.7; 4.2; 9.9 ]

let test_gamma_reflection_negative () =
  (* Γ(-0.5) = -2 sqrt(pi) *)
  check_rel ~tol:1e-10 "gamma -0.5" (-2.0 *. sqrt Float.pi) (Specfun.Gamma.gamma (-0.5))

let test_gamma_pole_raises () =
  Alcotest.check_raises "pole" (Invalid_argument "Gamma.gamma: pole at non-positive integer")
    (fun () -> ignore (Specfun.Gamma.gamma (-2.0)))

let test_log_gamma_large () =
  (* ln Γ(100) from Stirling-exact value ln(99!) *)
  let expected = ref 0.0 in
  for k = 1 to 99 do
    expected := !expected +. log (float_of_int k)
  done;
  check_rel ~tol:1e-12 "log_gamma 100" !expected (Specfun.Gamma.log_gamma 100.0)

let test_gamma_p_q_complement () =
  List.iter
    (fun (a, x) ->
      check_close ~tol:1e-12 "P + Q = 1" 1.0
        (Specfun.Gamma.gamma_p a x +. Specfun.Gamma.gamma_q a x))
    [ (0.5, 0.3); (2.0, 1.0); (5.0, 10.0); (1.0, 0.0) ]

let test_gamma_p_exponential () =
  (* P(1, x) = 1 - e^{-x} *)
  List.iter
    (fun x -> check_rel ~tol:1e-12 "P(1,x)" (1.0 -. exp (-.x)) (Specfun.Gamma.gamma_p 1.0 x))
    [ 0.1; 1.0; 3.0; 10.0 ]

(* ---------- Erf ---------- *)

let test_erf_known_values () =
  check_rel ~tol:1e-13 "erf 1" 0.8427007929497149 (Specfun.Erf.erf 1.0);
  check_rel ~tol:1e-13 "erf 2" 0.9953222650189527 (Specfun.Erf.erf 2.0);
  check_rel ~tol:1e-12 "erf 0.5" 0.5204998778130465 (Specfun.Erf.erf 0.5)

let test_erf_odd () =
  List.iter
    (fun x -> check_close ~tol:1e-14 "odd" (-.Specfun.Erf.erf x) (Specfun.Erf.erf (-.x)))
    [ 0.3; 1.0; 2.5 ]

let test_erfc_large_no_cancellation () =
  check_rel ~tol:1e-12 "erfc 3" 2.209049699858544e-5 (Specfun.Erf.erfc 3.0);
  check_rel ~tol:1e-10 "erfc 5" 1.5374597944280347e-12 (Specfun.Erf.erfc 5.0)

let test_erf_erfc_complement () =
  List.iter
    (fun x ->
      check_close ~tol:1e-13 "erf + erfc" 1.0 (Specfun.Erf.erf x +. Specfun.Erf.erfc x))
    [ -2.0; -0.5; 0.0; 0.7; 3.0 ]

let test_normal_cdf () =
  check_close ~tol:1e-14 "cdf 0" 0.5 (Specfun.Erf.normal_cdf 0.0);
  check_rel ~tol:1e-12 "cdf 1.96" 0.9750021048517795 (Specfun.Erf.normal_cdf 1.96);
  check_rel ~tol:1e-10 "cdf mu sigma" 0.9750021048517795
    (Specfun.Erf.normal_cdf ~mu:10.0 ~sigma:2.0 13.92)

let test_normal_quantile_inverts_cdf () =
  List.iter
    (fun p ->
      check_close ~tol:1e-10 "quantile(cdf)" p
        (Specfun.Erf.normal_cdf (Specfun.Erf.normal_quantile p)))
    [ 0.001; 0.025; 0.3; 0.5; 0.7; 0.975; 0.999 ]

let test_normal_quantile_known () =
  check_rel ~tol:1e-9 "q 0.975" 1.959963984540054 (Specfun.Erf.normal_quantile 0.975);
  check_close ~tol:1e-12 "q 0.5" 0.0 (Specfun.Erf.normal_quantile 0.5)

let test_normal_quantile_domain () =
  Alcotest.check_raises "p=0" (Invalid_argument "Erf.normal_quantile: requires 0 < p < 1")
    (fun () -> ignore (Specfun.Erf.normal_quantile 0.0))

(* ---------- Bessel ---------- *)

(* reference values from Abramowitz & Stegun / standard tables *)
let test_bessel_k0_k1 () =
  check_rel ~tol:2e-7 "K0(1)" 0.42102443824070834 (Specfun.Bessel.k0 1.0);
  check_rel ~tol:2e-7 "K1(1)" 0.6019072301972346 (Specfun.Bessel.k1 1.0);
  check_rel ~tol:2e-7 "K0(0.1)" 2.4270690247020166 (Specfun.Bessel.k0 0.1);
  check_rel ~tol:2e-7 "K1(5)" 0.004044613445452164 (Specfun.Bessel.k1 5.0)

let test_bessel_kn_recurrence () =
  (* K_{n+1}(x) = K_{n-1}(x) + (2n/x) K_n(x) *)
  List.iter
    (fun x ->
      let k1 = Specfun.Bessel.kn 1 x and k2 = Specfun.Bessel.kn 2 x in
      let k3 = Specfun.Bessel.kn 3 x in
      check_rel ~tol:1e-10 "recurrence" (k1 +. (4.0 /. x *. k2)) k3)
    [ 0.5; 1.0; 3.0; 8.0 ]

let test_bessel_half_integer () =
  (* K_{1/2}(x) = sqrt(pi/(2x)) e^{-x} *)
  List.iter
    (fun x ->
      check_rel ~tol:1e-12 "K_1/2"
        (sqrt (Float.pi /. (2.0 *. x)) *. exp (-.x))
        (Specfun.Bessel.k 0.5 x))
    [ 0.2; 1.0; 4.0 ];
  (* K_{3/2}(x) = sqrt(pi/(2x)) e^{-x} (1 + 1/x) *)
  List.iter
    (fun x ->
      check_rel ~tol:1e-12 "K_3/2"
        (sqrt (Float.pi /. (2.0 *. x)) *. exp (-.x) *. (1.0 +. (1.0 /. x)))
        (Specfun.Bessel.k 1.5 x))
    [ 0.5; 2.0 ]

let test_bessel_quadrature_vs_closed () =
  (* force the quadrature path with a slightly off-integer order and compare
     to the closed form at the integer order; K is smooth in nu *)
  List.iter
    (fun (nu, x) ->
      let q = Specfun.Bessel.k (nu +. 1e-9) x in
      let c = Specfun.Bessel.k nu x in
      check_rel ~tol:1e-5 "quad vs closed" c q)
    [ (1.0, 1.0); (2.0, 3.0); (0.5, 0.7); (1.5, 2.0); (3.0, 0.4) ]

let test_bessel_quadrature_small_x () =
  (* regression: non-half-integer nu at small x used to drive the adaptive
     quadrature into the integrand's underflow tail, where it effectively
     never terminated; the trapezoid rule must return promptly and match the
     small-x asymptote K_nu(x) ~ Gamma(nu) 2^(nu-1) x^(-nu) *)
  List.iter
    (fun (nu, x) ->
      let v = Specfun.Bessel.k nu x in
      Alcotest.(check bool) "finite positive" true (Float.is_finite v && v > 0.0);
      let asym =
        exp
          (Specfun.Gamma.log_gamma nu
          +. ((nu -. 1.0) *. log 2.0)
          -. (nu *. log x))
      in
      check_rel ~tol:0.02 (Printf.sprintf "K_%g(%g) near asymptote" nu x) asym v)
    [ (1.3, 0.002); (0.75, 0.01); (2.3, 0.005) ]

let test_bessel_positive_decreasing () =
  (* K_nu is positive and decreasing in x *)
  let nu = 0.75 in
  let prev = ref infinity in
  List.iter
    (fun x ->
      let v = Specfun.Bessel.k nu x in
      Alcotest.(check bool) "positive" true (v > 0.0);
      Alcotest.(check bool) "decreasing" true (v < !prev);
      prev := v)
    [ 0.1; 0.5; 1.0; 2.0; 4.0 ]

let test_bessel_domain_errors () =
  Alcotest.check_raises "x<=0" (Invalid_argument "Bessel.k0: requires x > 0") (fun () ->
      ignore (Specfun.Bessel.k0 0.0));
  Alcotest.check_raises "nu<0" (Invalid_argument "Bessel.k: requires nu >= 0") (fun () ->
      ignore (Specfun.Bessel.k (-1.0) 1.0))

let test_bessel_i0_i1 () =
  check_rel ~tol:2e-7 "I0(1)" 1.2660658777520082 (Specfun.Bessel.i0 1.0);
  check_rel ~tol:2e-7 "I1(1)" 0.5651591039924851 (Specfun.Bessel.i1 1.0);
  check_rel ~tol:3e-7 "I0(5)" 27.239871823604442 (Specfun.Bessel.i0 5.0)

(* wronskian-like identity: I0(x) K1(x) + I1(x) K0(x) = 1/x *)
let test_bessel_wronskian () =
  List.iter
    (fun x ->
      check_rel ~tol:1e-6 "wronskian" (1.0 /. x)
        ((Specfun.Bessel.i0 x *. Specfun.Bessel.k1 x)
        +. (Specfun.Bessel.i1 x *. Specfun.Bessel.k0 x)))
    [ 0.3; 1.0; 2.0; 6.0 ]

(* ---------- qcheck properties ---------- *)

let arb_pos_float lo hi =
  QCheck.float_range lo hi

let prop_erf_monotone =
  QCheck.Test.make ~name:"erf is monotone increasing" ~count:100
    (QCheck.pair (arb_pos_float (-4.0) 4.0) (arb_pos_float (-4.0) 4.0))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      lo = hi || Specfun.Erf.erf lo <= Specfun.Erf.erf hi)

let prop_cdf_in_unit_interval =
  QCheck.Test.make ~name:"normal cdf in [0,1]" ~count:100 (arb_pos_float (-8.0) 8.0)
    (fun x ->
      let v = Specfun.Erf.normal_cdf x in
      v >= 0.0 && v <= 1.0)

let prop_quantile_roundtrip =
  QCheck.Test.make ~name:"quantile inverts cdf" ~count:100 (arb_pos_float 0.001 0.999)
    (fun p -> Float.abs (Specfun.Erf.normal_cdf (Specfun.Erf.normal_quantile p) -. p) < 1e-9)

let prop_bessel_recurrence =
  QCheck.Test.make ~name:"bessel K recurrence holds" ~count:50
    (QCheck.pair (QCheck.int_range 1 6) (arb_pos_float 0.2 8.0))
    (fun (n, x) ->
      let knm1 = Specfun.Bessel.kn (n - 1) x in
      let kn = Specfun.Bessel.kn n x in
      let knp1 = Specfun.Bessel.kn (n + 1) x in
      let expected = knm1 +. (2.0 *. float_of_int n /. x *. kn) in
      Float.abs ((knp1 -. expected) /. knp1) < 1e-8)

let () =
  Alcotest.run "specfun"
    [
      ( "gamma",
        [
          Alcotest.test_case "integer values" `Quick test_gamma_integers;
          Alcotest.test_case "half-integer values" `Quick test_gamma_half;
          Alcotest.test_case "recurrence" `Quick test_gamma_recurrence;
          Alcotest.test_case "reflection (negative)" `Quick test_gamma_reflection_negative;
          Alcotest.test_case "pole raises" `Quick test_gamma_pole_raises;
          Alcotest.test_case "log_gamma large arg" `Quick test_log_gamma_large;
          Alcotest.test_case "P + Q = 1" `Quick test_gamma_p_q_complement;
          Alcotest.test_case "P(1, x) closed form" `Quick test_gamma_p_exponential;
        ] );
      ( "erf",
        [
          Alcotest.test_case "known values" `Quick test_erf_known_values;
          Alcotest.test_case "odd function" `Quick test_erf_odd;
          Alcotest.test_case "erfc large x" `Quick test_erfc_large_no_cancellation;
          Alcotest.test_case "erf + erfc = 1" `Quick test_erf_erfc_complement;
          Alcotest.test_case "normal cdf" `Quick test_normal_cdf;
          Alcotest.test_case "quantile inverts cdf" `Quick test_normal_quantile_inverts_cdf;
          Alcotest.test_case "quantile known values" `Quick test_normal_quantile_known;
          Alcotest.test_case "quantile domain" `Quick test_normal_quantile_domain;
        ] );
      ( "bessel",
        [
          Alcotest.test_case "K0/K1 table values" `Quick test_bessel_k0_k1;
          Alcotest.test_case "Kn recurrence" `Quick test_bessel_kn_recurrence;
          Alcotest.test_case "half-integer closed forms" `Quick test_bessel_half_integer;
          Alcotest.test_case "quadrature vs closed forms" `Quick test_bessel_quadrature_vs_closed;
          Alcotest.test_case "quadrature small x (regression)" `Quick
            test_bessel_quadrature_small_x;
          Alcotest.test_case "positive and decreasing" `Quick test_bessel_positive_decreasing;
          Alcotest.test_case "domain errors" `Quick test_bessel_domain_errors;
          Alcotest.test_case "I0/I1 table values" `Quick test_bessel_i0_i1;
          Alcotest.test_case "wronskian identity" `Quick test_bessel_wronskian;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_erf_monotone; prop_cdf_in_unit_interval; prop_quantile_roundtrip;
            prop_bessel_recurrence ] );
    ]
