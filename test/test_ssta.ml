module K = Kernels.Kernel

let check_close ?(tol = 1e-10) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

(* shared fixtures: a small circuit, placed once *)
let small_netlist =
  lazy
    (Circuit.Generator.generate
       { Circuit.Generator.name = "small"; n_gates = 120; n_inputs = 10;
         n_outputs = 6; dff_fraction = 0.0; seed = 7 })

let setup = lazy (Ssta.Experiment.setup_circuit (Lazy.force small_netlist))

let process = lazy (Ssta.Process.paper_default ())

(* a coarse KLE config that keeps tests fast *)
let fast_config =
  {
    Ssta.Algorithm2.max_area_fraction = 0.004;
    min_angle_deg = 28.0;
    computed_pairs = 80;
    r = Some 25;
    mode = Kle.Galerkin.Auto;
  }

(* ---------- Process ---------- *)

let test_process_default_valid () =
  let p = Lazy.force process in
  Alcotest.(check int) "4 parameters" 4 (Ssta.Process.num_parameters p);
  Alcotest.(check bool) "valid" true (Ssta.Process.validate p = Ok ())

let test_process_distinct_valid () =
  let p = Ssta.Process.distinct_kernels () in
  Alcotest.(check bool) "valid" true (Ssta.Process.validate p = Ok ());
  (* kernels actually differ *)
  let k0 = p.Ssta.Process.parameters.(0).Ssta.Process.kernel in
  let k1 = p.Ssta.Process.parameters.(1).Ssta.Process.kernel in
  Alcotest.(check bool) "distinct" true (k0 <> k1)

let test_process_invalid_kernel_detected () =
  let p =
    {
      Ssta.Process.parameters =
        Array.map
          (fun name -> { Ssta.Process.name; kernel = K.Gaussian { c = -1.0 } })
          Circuit.Gate.parameter_names;
    }
  in
  Alcotest.(check bool) "invalid" true (Result.is_error (Ssta.Process.validate p))

(* ---------- Experiment setup ---------- *)

let test_setup_locations_match_logic_gates () =
  let s = Lazy.force setup in
  Alcotest.(check int) "locations = logic gates"
    (Circuit.Netlist.logic_gate_count (Lazy.force small_netlist))
    (Array.length s.Ssta.Experiment.locations);
  (* all inside the die *)
  Array.iter
    (fun p ->
      Alcotest.(check bool) "inside" true (Geometry.Rect.contains Geometry.Rect.unit_die p))
    s.Ssta.Experiment.locations

(* ---------- Algorithm 1 ---------- *)

let test_a1_block_shapes () =
  let s = Lazy.force setup in
  let a1 = Ssta.Algorithm1.prepare (Lazy.force process) s.Ssta.Experiment.locations in
  let rng = Prng.Rng.create ~seed:1 in
  let blocks = Ssta.Algorithm1.sample_block a1 rng ~n:50 in
  Alcotest.(check int) "4 blocks" 4 (Array.length blocks);
  Array.iter
    (fun b ->
      Alcotest.(check int) "rows" 50 (Linalg.Mat.rows b);
      Alcotest.(check int) "cols" (Array.length s.Ssta.Experiment.locations) (Linalg.Mat.cols b))
    blocks

let test_a1_marginals_standard_normal () =
  let s = Lazy.force setup in
  let a1 = Ssta.Algorithm1.prepare (Lazy.force process) s.Ssta.Experiment.locations in
  let rng = Prng.Rng.create ~seed:2 in
  let blocks = Ssta.Algorithm1.sample_block a1 rng ~n:8000 in
  let col = Linalg.Mat.col blocks.(0) 3 in
  let summary = Stats.Summary.of_array col in
  check_close ~tol:0.06 "mean 0" 0.0 summary.Stats.Summary.mean;
  check_close ~tol:0.08 "std 1" 1.0 summary.Stats.Summary.std_dev

let test_a1_correlation_follows_kernel () =
  let s = Lazy.force setup in
  let proc = Lazy.force process in
  let a1 = Ssta.Algorithm1.prepare proc s.Ssta.Experiment.locations in
  let rng = Prng.Rng.create ~seed:3 in
  let blocks = Ssta.Algorithm1.sample_block a1 rng ~n:8000 in
  let corr = Stats.Correlation.column_correlation blocks.(2) in
  let kernel = proc.Ssta.Process.parameters.(2).Ssta.Process.kernel in
  List.iter
    (fun (i, j) ->
      let expected =
        K.eval kernel s.Ssta.Experiment.locations.(i) s.Ssta.Experiment.locations.(j)
      in
      let got = Linalg.Mat.get corr i j in
      Alcotest.(check bool)
        (Printf.sprintf "pair (%d,%d): %.3f vs %.3f" i j expected got)
        true
        (Float.abs (expected -. got) < 0.08))
    [ (0, 1); (5, 50); (10, 100); (30, 80) ]

let test_a1_parameters_mutually_independent () =
  let s = Lazy.force setup in
  let a1 = Ssta.Algorithm1.prepare (Lazy.force process) s.Ssta.Experiment.locations in
  let rng = Prng.Rng.create ~seed:4 in
  let blocks = Ssta.Algorithm1.sample_block a1 rng ~n:8000 in
  (* same gate, different parameters: near-zero correlation *)
  let x = Linalg.Mat.col blocks.(0) 7 and y = Linalg.Mat.col blocks.(1) 7 in
  Alcotest.(check bool) "independent" true (Float.abs (Stats.Correlation.pearson x y) < 0.05)

let test_a1_memory_estimate () =
  let bytes = Ssta.Algorithm1.memory_bytes ~n_locations:1000 ~n_parameters:4 in
  Alcotest.(check bool) "about 40MB" true (bytes = 8 * 1000 * 1000 * 5)

(* ---------- Algorithm 2 ---------- *)

let a2_fixture =
  lazy
    (let s = Lazy.force setup in
     Ssta.Algorithm2.prepare ~config:fast_config (Lazy.force process)
       s.Ssta.Experiment.locations)

let test_a2_structure () =
  let a2 = Lazy.force a2_fixture in
  Alcotest.(check int) "r" 25 (Ssta.Algorithm2.r a2);
  Alcotest.(check bool) "mesh sized" true (Ssta.Algorithm2.mesh_size a2 > 50);
  Alcotest.(check bool) "setup timed" true (Ssta.Algorithm2.setup_seconds a2 > 0.0)

let test_a2_shared_kernel_shares_model () =
  let a2 = Lazy.force a2_fixture in
  let models = Ssta.Algorithm2.models a2 in
  (* paper_default uses one kernel for all 4 parameters: physical equality *)
  Alcotest.(check bool) "shared" true (models.(0) == models.(1) && models.(1) == models.(3))

let test_a2_prepare_closure_kernels () =
  (* regression: the per-kernel model cache used to key on structural
     equality, and polymorphic compare raises on kernels carrying closures
     (a [Util.Fault.Transform] plan); the cache now keys on physical
     equality.  All four parameters share one kernel value, so they must
     also share one model. *)
  let plan = Util.Fault.plan ~first:max_int (Util.Fault.Transform (fun v -> v)) in
  let kernel = K.Faulty { base = K.Gaussian { c = 2.8 }; plan } in
  let p =
    {
      Ssta.Process.parameters =
        Array.map
          (fun name -> { Ssta.Process.name; kernel })
          Circuit.Gate.parameter_names;
    }
  in
  (* the pipeline's distinct-kernel scan walks the same closure-carrying
     values and must not fall back to structural membership either *)
  (match Ssta.Pipeline.validate_process (Ssta.Pipeline.create ()) p with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "validate_process failed: %s" e.Util.Diag.detail);
  let s = Lazy.force setup in
  let a2 = Ssta.Algorithm2.prepare ~config:fast_config p s.Ssta.Experiment.locations in
  let models = Ssta.Algorithm2.models a2 in
  Alcotest.(check bool) "one model shared via physical equality" true
    (models.(0) == models.(1) && models.(1) == models.(2) && models.(2) == models.(3))

let test_a2_block_shapes () =
  let s = Lazy.force setup in
  let a2 = Lazy.force a2_fixture in
  let rng = Prng.Rng.create ~seed:5 in
  let blocks = Ssta.Algorithm2.sample_block a2 rng ~n:40 in
  Alcotest.(check int) "4 blocks" 4 (Array.length blocks);
  Array.iter
    (fun b ->
      Alcotest.(check int) "rows" 40 (Linalg.Mat.rows b);
      Alcotest.(check int) "cols" (Array.length s.Ssta.Experiment.locations) (Linalg.Mat.cols b))
    blocks

let test_a2_correlation_follows_kernel () =
  let s = Lazy.force setup in
  let proc = Lazy.force process in
  let a2 = Lazy.force a2_fixture in
  let rng = Prng.Rng.create ~seed:6 in
  let blocks = Ssta.Algorithm2.sample_block a2 rng ~n:8000 in
  let corr = Stats.Correlation.column_correlation blocks.(1) in
  let kernel = proc.Ssta.Process.parameters.(1).Ssta.Process.kernel in
  List.iter
    (fun (i, j) ->
      let expected =
        K.eval kernel s.Ssta.Experiment.locations.(i) s.Ssta.Experiment.locations.(j)
      in
      let got = Linalg.Mat.get corr i j in
      Alcotest.(check bool)
        (Printf.sprintf "pair (%d,%d): %.3f vs %.3f" i j expected got)
        true
        (Float.abs (expected -. got) < 0.12))
    [ (0, 1); (5, 50); (10, 100); (30, 80) ]

(* ---------- Grid PCA baseline ---------- *)

let test_grid_pca_shapes_and_variance () =
  let s = Lazy.force setup in
  let g = Ssta.Grid_pca.prepare ~grid:6 ~r:20 (Lazy.force process) s.Ssta.Experiment.locations in
  Alcotest.(check int) "r" 20 (Ssta.Grid_pca.r g);
  let ev = Ssta.Grid_pca.explained_variance_fraction g in
  Alcotest.(check bool) (Printf.sprintf "explained %.3f" ev) true (ev > 0.8 && ev <= 1.0 +. 1e-9);
  let rng = Prng.Rng.create ~seed:7 in
  let blocks = Ssta.Grid_pca.sample_block g rng ~n:30 in
  Alcotest.(check int) "cols" (Array.length s.Ssta.Experiment.locations)
    (Linalg.Mat.cols blocks.(0))

let test_grid_pca_same_cell_fully_correlated () =
  let s = Lazy.force setup in
  let g = Ssta.Grid_pca.prepare ~grid:4 (Lazy.force process) s.Ssta.Experiment.locations in
  (* find two gates in the same cell *)
  let n = Array.length s.Ssta.Experiment.locations in
  let pair = ref None in
  (try
     for i = 0 to n - 1 do
       for j = i + 1 to n - 1 do
         if Ssta.Grid_pca.cell_of_location g i = Ssta.Grid_pca.cell_of_location g j then begin
           pair := Some (i, j);
           raise Exit
         end
       done
     done
   with Exit -> ());
  match !pair with
  | None -> Alcotest.fail "no same-cell pair found"
  | Some (i, j) ->
      let rng = Prng.Rng.create ~seed:8 in
      let blocks = Ssta.Grid_pca.sample_block g rng ~n:2000 in
      let x = Linalg.Mat.col blocks.(0) i and y = Linalg.Mat.col blocks.(0) j in
      check_close ~tol:1e-6 "same cell corr 1" 1.0 (Stats.Correlation.pearson x y)

let test_grid_pca_r_out_of_range () =
  let s = Lazy.force setup in
  Alcotest.(check bool) "raises" true
    (match Ssta.Grid_pca.prepare ~grid:3 ~r:100 (Lazy.force process) s.Ssta.Experiment.locations with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ---------- run_mc + compare ---------- *)

let test_run_mc_deterministic () =
  let s = Lazy.force setup in
  let a2 = Lazy.force a2_fixture in
  (* same seed and batch size: bit-identical statistics *)
  let run () =
    Ssta.Experiment.run_mc ~batch:16 s ~sampler:(Ssta.Algorithm2.sample_block a2) ~seed:9 ~n:64
  in
  let r1 = run () and r2 = run () in
  check_close ~tol:0.0 "same mean" r1.Ssta.Experiment.worst_mean r2.Ssta.Experiment.worst_mean;
  check_close ~tol:0.0 "same sigma" r1.Ssta.Experiment.worst_sigma r2.Ssta.Experiment.worst_sigma

let test_run_mc_batching_consistent () =
  (* different batch sizes reshuffle the RNG stream across parameters, so
     results differ sample-by-sample but must agree statistically *)
  let s = Lazy.force setup in
  let a2 = Lazy.force a2_fixture in
  let r1 =
    Ssta.Experiment.run_mc ~batch:50 s ~sampler:(Ssta.Algorithm2.sample_block a2) ~seed:9 ~n:1500
  in
  let r2 =
    Ssta.Experiment.run_mc ~batch:1500 s ~sampler:(Ssta.Algorithm2.sample_block a2) ~seed:9 ~n:1500
  in
  let rel = Float.abs (r1.Ssta.Experiment.worst_mean -. r2.Ssta.Experiment.worst_mean) /. r1.Ssta.Experiment.worst_mean in
  Alcotest.(check bool) (Printf.sprintf "means agree (rel %.2e)" rel) true (rel < 0.005)

let test_algorithms_agree () =
  (* the headline claim at small scale: KLE MC matches Cholesky MC *)
  let s = Lazy.force setup in
  let proc = Lazy.force process in
  let a1 = Ssta.Algorithm1.prepare proc s.Ssta.Experiment.locations in
  let a2 = Lazy.force a2_fixture in
  let n = 3000 in
  let mc1 = Ssta.Experiment.run_mc s ~sampler:(Ssta.Algorithm1.sample_block a1) ~seed:21 ~n in
  let mc2 = Ssta.Experiment.run_mc s ~sampler:(Ssta.Algorithm2.sample_block a2) ~seed:22 ~n in
  let cmp =
    Ssta.Experiment.compare ~reference:mc1 ~reference_setup_seconds:0.0 ~candidate:mc2
      ~candidate_setup_seconds:0.0
  in
  Alcotest.(check bool)
    (Printf.sprintf "e_mu %.3f%% < 0.5%%" cmp.Ssta.Experiment.e_mu_pct)
    true
    (cmp.Ssta.Experiment.e_mu_pct < 0.5);
  Alcotest.(check bool)
    (Printf.sprintf "e_sigma %.2f%% < 15%%" cmp.Ssta.Experiment.e_sigma_pct)
    true
    (cmp.Ssta.Experiment.e_sigma_pct < 15.0)

let test_compare_metrics_known () =
  let mk mean sigma =
    {
      Ssta.Experiment.n_samples = 10;
      n_skipped = 0;
      worst_mean = mean;
      worst_sigma = sigma;
      endpoint_mean = [| mean |];
      endpoint_sigma = [| sigma |];
      sample_seconds = 1.0;
      sta_seconds = 1.0;
    }
  in
  let cmp =
    Ssta.Experiment.compare ~reference:(mk 100.0 10.0) ~reference_setup_seconds:2.0
      ~candidate:(mk 101.0 11.0) ~candidate_setup_seconds:0.0
  in
  check_close ~tol:1e-9 "e_mu" 1.0 cmp.Ssta.Experiment.e_mu_pct;
  check_close ~tol:1e-9 "e_sigma" 10.0 cmp.Ssta.Experiment.e_sigma_pct;
  check_close ~tol:1e-9 "speedup" 2.0 cmp.Ssta.Experiment.speedup;
  check_close ~tol:1e-9 "sigma avg" 10.0 cmp.Ssta.Experiment.sigma_err_avg_outputs_pct

let test_run_mc_rejects_bad_n () =
  let s = Lazy.force setup in
  let a2 = Lazy.force a2_fixture in
  Alcotest.(check bool) "n=0 raises" true
    (match
       Ssta.Experiment.run_mc s ~sampler:(Ssta.Algorithm2.sample_block a2) ~seed:1 ~n:0
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_run_mc_rejects_bad_sampler_shape () =
  (* regression: block width was validated but row count was not, so a
     misbehaving sampler read stale/garbage rows instead of failing *)
  let s = Lazy.force setup in
  let n_logic = Array.length s.Ssta.Experiment.logic_ids in
  let raises sampler =
    match Ssta.Experiment.run_mc s ~sampler ~seed:1 ~n:8 with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  let short_rows _rng ~n = Array.init 4 (fun _ -> Linalg.Mat.create (n - 1) n_logic) in
  Alcotest.(check bool) "short rows raise" true (raises short_rows);
  let narrow _rng ~n = Array.init 4 (fun _ -> Linalg.Mat.create n (n_logic - 1)) in
  Alcotest.(check bool) "narrow blocks raise" true (raises narrow);
  let three_blocks _rng ~n = Array.init 3 (fun _ -> Linalg.Mat.create n n_logic) in
  Alcotest.(check bool) "3 blocks raise" true (raises three_blocks)

let test_run_mc_single_sample () =
  (* regression: n = 1 crashed because Welford.std_dev raised for n < 2 *)
  let s = Lazy.force setup in
  let a2 = Lazy.force a2_fixture in
  let r =
    Ssta.Experiment.run_mc s ~sampler:(Ssta.Algorithm2.sample_block a2) ~seed:5 ~n:1
  in
  Alcotest.(check int) "one sample" 1 r.Ssta.Experiment.n_samples;
  check_close ~tol:0.0 "sigma is 0 for a single sample" 0.0 r.Ssta.Experiment.worst_sigma;
  Alcotest.(check bool) "mean finite" true (Float.is_finite r.Ssta.Experiment.worst_mean);
  Array.iter
    (fun sd -> check_close ~tol:0.0 "endpoint sigma 0" 0.0 sd)
    r.Ssta.Experiment.endpoint_sigma

let test_run_mc_jobs_bit_identical () =
  (* the tentpole determinism contract: results are a pure function of
     (setup, sampler, seed, n, batch) — any jobs count gives the same bits *)
  let s = Lazy.force setup in
  let a2 = Lazy.force a2_fixture in
  let run jobs =
    Ssta.Experiment.run_mc ~jobs ~batch:48 s
      ~sampler:(Ssta.Algorithm2.sample_block a2) ~seed:9 ~n:150
  in
  let r1 = run 1 and r2 = run 2 and r4 = run 4 in
  List.iter
    (fun (label, r) ->
      check_close ~tol:0.0 (label ^ " mean") r1.Ssta.Experiment.worst_mean
        r.Ssta.Experiment.worst_mean;
      check_close ~tol:0.0 (label ^ " sigma") r1.Ssta.Experiment.worst_sigma
        r.Ssta.Experiment.worst_sigma;
      Alcotest.(check (array (float 0.0)))
        (label ^ " endpoint means")
        r1.Ssta.Experiment.endpoint_mean r.Ssta.Experiment.endpoint_mean;
      Alcotest.(check (array (float 0.0)))
        (label ^ " endpoint sigmas")
        r1.Ssta.Experiment.endpoint_sigma r.Ssta.Experiment.endpoint_sigma)
    [ ("jobs=2", r2); ("jobs=4", r4) ]

let test_compare_skips_zero_sigma_endpoints () =
  (* regression: a zero-sigma reference endpoint turned the Fig. 6 average
     into inf/nan instead of being excluded *)
  let mk sigmas =
    {
      Ssta.Experiment.n_samples = 10;
      n_skipped = 0;
      worst_mean = 100.0;
      worst_sigma = 10.0;
      endpoint_mean = Array.map (fun _ -> 100.0) sigmas;
      endpoint_sigma = sigmas;
      sample_seconds = 1.0;
      sta_seconds = 1.0;
    }
  in
  let cmp =
    Ssta.Experiment.compare
      ~reference:(mk [| 10.0; 0.0; 20.0 |])
      ~reference_setup_seconds:0.0
      ~candidate:(mk [| 11.0; 0.5; 22.0 |])
      ~candidate_setup_seconds:0.0
  in
  (* zero-sigma endpoint skipped: average of 10% and 10% over 2 endpoints *)
  check_close ~tol:1e-9 "zero-sigma endpoint excluded" 10.0
    cmp.Ssta.Experiment.sigma_err_avg_outputs_pct;
  let all_zero =
    Ssta.Experiment.compare
      ~reference:(mk [| 0.0; 0.0 |])
      ~reference_setup_seconds:0.0 ~candidate:(mk [| 1.0; 2.0 |])
      ~candidate_setup_seconds:0.0
  in
  Alcotest.(check bool) "all-zero reference gives nan" true
    (Float.is_nan all_zero.Ssta.Experiment.sigma_err_avg_outputs_pct)

let test_compare_excluded_endpoint_count () =
  let mk sigmas =
    {
      Ssta.Experiment.n_samples = 10;
      n_skipped = 0;
      worst_mean = 100.0;
      worst_sigma = 10.0;
      endpoint_mean = Array.map (fun _ -> 100.0) sigmas;
      endpoint_sigma = sigmas;
      sample_seconds = 1.0;
      sta_seconds = 1.0;
    }
  in
  let cmp r c =
    Ssta.Experiment.compare ~reference:(mk r) ~reference_setup_seconds:0.0
      ~candidate:(mk c) ~candidate_setup_seconds:0.0
  in
  Alcotest.(check int) "one zero-sigma endpoint excluded" 1
    (cmp [| 10.0; 0.0; 20.0 |] [| 11.0; 0.5; 22.0 |]).Ssta.Experiment.excluded_endpoints;
  Alcotest.(check int) "none excluded" 0
    (cmp [| 10.0; 20.0 |] [| 11.0; 22.0 |]).Ssta.Experiment.excluded_endpoints;
  let all = cmp [| 0.0; 0.0 |] [| 1.0; 2.0 |] in
  Alcotest.(check int) "all excluded" 2 all.Ssta.Experiment.excluded_endpoints;
  Alcotest.(check bool) "all excluded still nan" true
    (Float.is_nan all.Ssta.Experiment.sigma_err_avg_outputs_pct);
  let mismatch = cmp [| 10.0; 20.0 |] [| 10.0; 20.0; 30.0 |] in
  Alcotest.(check int) "endpoint-count mismatch excludes all" 2
    mismatch.Ssta.Experiment.excluded_endpoints

(* ---------- non-finite policies + fault injection ---------- *)

let test_run_mc_fail_policy_names_fault () =
  let s = Lazy.force setup in
  let a2 = Lazy.force a2_fixture in
  let diag = Util.Diag.create () in
  (* corrupt one entry of the second sampler call (batch 1) *)
  let faulty, fired =
    Ssta.Fault_inject.sampler ~first:1 ~diag ~seed:77
      (Ssta.Algorithm2.sample_block a2)
  in
  (match Ssta.Experiment.run_mc ~batch:16 ~diag s ~sampler:faulty ~seed:9 ~n:64 with
  | _ -> Alcotest.fail "expected Util.Diag.Failure"
  | exception Util.Diag.Failure e ->
      Alcotest.(check bool) "typed non-finite" true (e.Util.Diag.code = `Non_finite);
      Alcotest.(check string) "stage" "experiment.run_mc" e.Util.Diag.stage;
      Alcotest.(check bool) "names the batch" true
        (let rec has i =
           i + 7 <= String.length e.Util.Diag.detail
           && (String.sub e.Util.Diag.detail i 7 = "batch 1" || has (i + 1))
         in
         has 0));
  Alcotest.(check int) "exactly one fault fired" 1 (fired ());
  Alcotest.(check bool) "fault event recorded" true
    (Util.Diag.count ~code:`Fault_injected diag > 0)

let test_run_mc_skip_policy_bit_identical_across_jobs () =
  (* acceptance criterion: Skip policy with the same fault seed stays
     bit-identical across -j 1 and -j 2, with a deterministic skip count *)
  let s = Lazy.force setup in
  let a2 = Lazy.force a2_fixture in
  let run jobs =
    (* fresh decorator per run: its call counter is part of the run state *)
    let faulty, _ =
      Ssta.Fault_inject.sampler ~first:0 ~period:2 ~entries_per_call:2 ~seed:77
        (Ssta.Algorithm2.sample_block a2)
    in
    let diag = Util.Diag.create () in
    let r =
      Ssta.Experiment.run_mc ~jobs ~batch:24 ~policy:Ssta.Experiment.Skip ~diag s
        ~sampler:faulty ~seed:9 ~n:96
    in
    (r, diag)
  in
  let r1, d1 = run 1 and r2, d2 = run 2 in
  Alcotest.(check bool) "samples were skipped" true (r1.Ssta.Experiment.n_skipped > 0);
  Alcotest.(check int) "same skip count" r1.Ssta.Experiment.n_skipped
    r2.Ssta.Experiment.n_skipped;
  Alcotest.(check int) "skip warnings recorded" (Util.Diag.count ~code:`Skipped_samples d1)
    (Util.Diag.count ~code:`Skipped_samples d2);
  Alcotest.(check bool) "at least one skip warning" true
    (Util.Diag.count ~code:`Skipped_samples d1 > 0);
  check_close ~tol:0.0 "same mean" r1.Ssta.Experiment.worst_mean r2.Ssta.Experiment.worst_mean;
  check_close ~tol:0.0 "same sigma" r1.Ssta.Experiment.worst_sigma
    r2.Ssta.Experiment.worst_sigma;
  Alcotest.(check (array (float 0.0)))
    "endpoint means" r1.Ssta.Experiment.endpoint_mean r2.Ssta.Experiment.endpoint_mean;
  Alcotest.(check (array (float 0.0)))
    "endpoint sigmas" r1.Ssta.Experiment.endpoint_sigma r2.Ssta.Experiment.endpoint_sigma;
  (* and the whole thing is reproducible run-to-run *)
  let r1', _ = run 1 in
  Alcotest.(check int) "reproducible skip count" r1.Ssta.Experiment.n_skipped
    r1'.Ssta.Experiment.n_skipped;
  check_close ~tol:0.0 "reproducible mean" r1.Ssta.Experiment.worst_mean
    r1'.Ssta.Experiment.worst_mean

let test_run_mc_all_skipped_raises () =
  let s = Lazy.force setup in
  let n_logic = Array.length s.Ssta.Experiment.logic_ids in
  let all_nan _rng ~n =
    Array.init 4 (fun _ -> Linalg.Mat.init n n_logic (fun _ _ -> Float.nan))
  in
  Alcotest.(check bool) "raises when every sample is bad" true
    (match
       Ssta.Experiment.run_mc ~policy:Ssta.Experiment.Skip s ~sampler:all_nan ~seed:1 ~n:8
     with
    | _ -> false
    | exception Util.Diag.Failure e -> e.Util.Diag.code = `Non_finite)

(* ---------- Pipeline ---------- *)

let test_pipeline_cholesky_end_to_end () =
  let p = Ssta.Pipeline.create () in
  match
    Ssta.Pipeline.run p Ssta.Pipeline.Cholesky (Lazy.force process)
      (Lazy.force small_netlist) ~seed:3 ~n:40
  with
  | Error e -> Alcotest.fail (Util.Diag.to_string e)
  | Ok (prepared, mc) ->
      Alcotest.(check int) "n samples" 40 mc.Ssta.Experiment.n_samples;
      Alcotest.(check int) "no skips" 0 mc.Ssta.Experiment.n_skipped;
      Alcotest.(check bool) "finite mean" true (Float.is_finite mc.Ssta.Experiment.worst_mean);
      Alcotest.(check bool) "setup timed" true
        (Ssta.Pipeline.setup_seconds_of prepared >= 0.0)

let test_pipeline_kle_stages () =
  let s = Lazy.force setup in
  let p = Ssta.Pipeline.create () in
  let proc =
    match Ssta.Pipeline.validate_process p (Lazy.force process) with
    | Ok proc -> proc
    | Error e -> Alcotest.fail (Util.Diag.to_string e)
  in
  match Ssta.Pipeline.prepare p (Ssta.Pipeline.Kle fast_config) proc s with
  | Error e -> Alcotest.fail (Util.Diag.to_string e)
  | Ok prepared -> (
      match Ssta.Pipeline.run_mc p s prepared ~seed:11 ~n:32 with
      | Error e -> Alcotest.fail (Util.Diag.to_string e)
      | Ok mc ->
          Alcotest.(check int) "n samples" 32 mc.Ssta.Experiment.n_samples;
          Alcotest.(check bool) "finite sigma" true
            (Float.is_finite mc.Ssta.Experiment.worst_sigma))

let test_pipeline_rejects_invalid_kernel () =
  let p = Ssta.Pipeline.create () in
  let bad =
    {
      Ssta.Process.parameters =
        Array.map
          (fun name -> { Ssta.Process.name; kernel = K.Gaussian { c = -1.0 } })
          Circuit.Gate.parameter_names;
    }
  in
  match Ssta.Pipeline.validate_process p bad with
  | Ok _ -> Alcotest.fail "invalid kernel accepted"
  | Error e ->
      Alcotest.(check bool) "typed invalid-input" true (e.Util.Diag.code = `Invalid_input);
      Alcotest.(check bool) "recorded" true
        (Util.Diag.count ~min_severity:Util.Diag.Error (Ssta.Pipeline.diagnostics p) > 0)

let test_pipeline_mesh_angle_floor () =
  let p = Ssta.Pipeline.create () in
  let mesh = Geometry.Mesh.uniform Geometry.Rect.unit_die ~divisions:4 in
  (match Ssta.Pipeline.validate_mesh p mesh with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Util.Diag.to_string e));
  match Ssta.Pipeline.validate_mesh ~min_angle_deg:60.0 p mesh with
  | Ok _ -> Alcotest.fail "45-degree mesh passed a 60-degree floor"
  | Error e -> Alcotest.(check bool) "typed" true (e.Util.Diag.code = `Invalid_input)

let test_pipeline_strict_escalates_degraded_factorization () =
  (* duplicate gate locations make the Algorithm 1 covariance exactly
     singular: the jitter fallback rescues it, and strict mode turns the
     recorded degradation into a stage failure *)
  let s = Lazy.force setup in
  let locations = Array.copy s.Ssta.Experiment.locations in
  locations.(1) <- locations.(0);
  let s = { s with Ssta.Experiment.locations } in
  let proc = Lazy.force process in
  (* lax pipeline: degraded but Ok, with the fallback on record *)
  let lax = Ssta.Pipeline.create () in
  (match Ssta.Pipeline.prepare lax Ssta.Pipeline.Cholesky proc s with
  | Error e -> Alcotest.fail (Util.Diag.to_string e)
  | Ok _ ->
      Alcotest.(check bool) "degradation recorded" true
        (Util.Diag.count ~code:`Degraded_fallback (Ssta.Pipeline.diagnostics lax) > 0));
  (* strict pipeline: the same degradation fails the stage *)
  let strict = Ssta.Pipeline.create ~strict:true () in
  match Ssta.Pipeline.prepare strict Ssta.Pipeline.Cholesky proc s with
  | Ok _ -> Alcotest.fail "strict mode accepted a degraded factorization"
  | Error e ->
      Alcotest.(check bool) "escalated to error" true
        (e.Util.Diag.severity = Util.Diag.Error);
      Alcotest.(check bool) "fallback code" true (e.Util.Diag.code = `Degraded_fallback)

(* ---------- Canonical forms ---------- *)

let canon ~mean ~sens ~indep = Ssta.Canonical.make ~mean ~sens ~indep

let test_canonical_algebra () =
  let a = canon ~mean:1.0 ~sens:[| 2.0; 0.0 |] ~indep:1.0 in
  let b = canon ~mean:3.0 ~sens:[| 1.0; 4.0 |] ~indep:2.0 in
  let s = Ssta.Canonical.add a b in
  check_close "mean" 4.0 s.Ssta.Canonical.mean;
  Alcotest.(check (array (float 1e-12))) "sens" [| 3.0; 4.0 |] s.Ssta.Canonical.sens;
  check_close "indep rss" (sqrt 5.0) s.Ssta.Canonical.indep;
  check_close "variance" (9.0 +. 16.0 +. 5.0) (Ssta.Canonical.variance s);
  let sc = Ssta.Canonical.scale (-2.0) a in
  check_close "scaled mean" (-2.0) sc.Ssta.Canonical.mean;
  check_close "scaled indep" 2.0 sc.Ssta.Canonical.indep

let test_canonical_covariance () =
  let a = canon ~mean:0.0 ~sens:[| 1.0; 2.0 |] ~indep:5.0 in
  let b = canon ~mean:0.0 ~sens:[| 3.0; -1.0 |] ~indep:7.0 in
  (* local terms never correlate *)
  check_close "cov" 1.0 (Ssta.Canonical.covariance a b);
  check_close "symmetric" (Ssta.Canonical.covariance b a) (Ssta.Canonical.covariance a b)

let test_canonical_mismatch () =
  let a = canon ~mean:0.0 ~sens:[| 1.0 |] ~indep:0.0 in
  let b = canon ~mean:0.0 ~sens:[| 1.0; 2.0 |] ~indep:0.0 in
  Alcotest.(check bool) "raises" true
    (match Ssta.Canonical.add a b with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_canonical_negative_indep () =
  Alcotest.(check bool) "raises" true
    (match canon ~mean:0.0 ~sens:[| 1.0 |] ~indep:(-1.0) with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* brute-force MC check of Clark's max on two correlated forms *)
let mc_max_moments a b n seed =
  let rng = Prng.Rng.create ~seed in
  let dim = Ssta.Canonical.dim a in
  let acc = Stats.Welford.create () in
  for _ = 1 to n do
    let xi = Prng.Gaussian.vector rng dim in
    let la = Prng.Gaussian.draw rng and lb = Prng.Gaussian.draw rng in
    let va = Ssta.Canonical.eval a ~xi ~local:la in
    let vb = Ssta.Canonical.eval b ~xi ~local:lb in
    Stats.Welford.add acc (Float.max va vb)
  done;
  (Stats.Welford.mean acc, Stats.Welford.std_dev acc)

let test_clark_max_vs_mc () =
  List.iteri
    (fun i (a, b) ->
      let m = Ssta.Canonical.max_clark a b in
      let mc_mean, mc_sigma = mc_max_moments a b 100_000 (100 + i) in
      Alcotest.(check bool)
        (Printf.sprintf "case %d mean: clark %.4f vs mc %.4f" i
           m.Ssta.Canonical.mean mc_mean)
        true
        (Float.abs (m.Ssta.Canonical.mean -. mc_mean) < 0.02 *. (1.0 +. Float.abs mc_mean));
      Alcotest.(check bool)
        (Printf.sprintf "case %d sigma: clark %.4f vs mc %.4f" i
           (Ssta.Canonical.sigma m) mc_sigma)
        true
        (Float.abs (Ssta.Canonical.sigma m -. mc_sigma) < 0.03 *. mc_sigma))
    [
      (* overlapping, partially correlated *)
      ( canon ~mean:10.0 ~sens:[| 1.0; 0.5 |] ~indep:0.5,
        canon ~mean:10.2 ~sens:[| 0.8; -0.3 |] ~indep:0.7 );
      (* far apart: max ~ the bigger one *)
      ( canon ~mean:0.0 ~sens:[| 1.0; 0.0 |] ~indep:0.0,
        canon ~mean:8.0 ~sens:[| 0.0; 1.0 |] ~indep:0.0 );
      (* anti-correlated *)
      ( canon ~mean:5.0 ~sens:[| 2.0; 0.0 |] ~indep:0.1,
        canon ~mean:5.0 ~sens:[| -2.0; 0.0 |] ~indep:0.1 );
    ]

let test_clark_max_identical_forms () =
  let a = canon ~mean:3.0 ~sens:[| 1.0; 2.0 |] ~indep:0.0 in
  let m = Ssta.Canonical.max_clark a a in
  check_close "same mean" 3.0 m.Ssta.Canonical.mean;
  check_close "same sigma" (Ssta.Canonical.sigma a) (Ssta.Canonical.sigma m)

let test_clark_max_dominant () =
  let a = canon ~mean:0.0 ~sens:[| 1.0 |] ~indep:0.0 in
  let b = canon ~mean:100.0 ~sens:[| 0.5 |] ~indep:0.0 in
  let m = Ssta.Canonical.max_clark a b in
  check_close ~tol:1e-6 "dominant mean" 100.0 m.Ssta.Canonical.mean;
  check_close ~tol:1e-6 "dominant sens" 0.5 m.Ssta.Canonical.sens.(0)

let test_max_many_empty () =
  Alcotest.(check bool) "raises" true
    (match Ssta.Canonical.max_many [] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_canonical_quantile () =
  let a = canon ~mean:10.0 ~sens:[| 3.0; 4.0 |] ~indep:0.0 in
  (* sigma 5 *)
  check_close ~tol:1e-6 "median" 10.0 (Ssta.Canonical.quantile a 0.5);
  check_close ~tol:1e-4 "+1 sigma" 15.0 (Ssta.Canonical.quantile a 0.8413447460685429)

(* ---------- Block SSTA ---------- *)

let test_block_ssta_matches_mc () =
  let s = Lazy.force setup in
  let a2 = Lazy.force a2_fixture in
  let blk = Ssta.Block_ssta.run s ~models:(Ssta.Algorithm2.models a2) in
  (* MC with the SAME KLE models isolates the Clark/linearization error *)
  let mc =
    Ssta.Experiment.run_mc s ~sampler:(Ssta.Algorithm2.sample_block a2) ~seed:31 ~n:4000
  in
  let e_mu, e_sigma = Ssta.Block_ssta.validate_against_mc blk ~reference:mc in
  Alcotest.(check bool) (Printf.sprintf "e_mu %.3f%% < 1%%" e_mu) true (e_mu < 1.0);
  Alcotest.(check bool) (Printf.sprintf "e_sigma %.2f%% < 12%%" e_sigma) true (e_sigma < 12.0)

let test_block_ssta_structure () =
  let s = Lazy.force setup in
  let a2 = Lazy.force a2_fixture in
  let blk = Ssta.Block_ssta.run s ~models:(Ssta.Algorithm2.models a2) in
  Alcotest.(check int) "endpoints" (Array.length s.Ssta.Experiment.sta.Sta.Timing.endpoints)
    (Array.length blk.Ssta.Block_ssta.endpoint_forms);
  Alcotest.(check int) "basis dim = 4r" (4 * Ssta.Algorithm2.r a2) blk.Ssta.Block_ssta.basis_dim;
  Alcotest.(check bool) "sigma positive" true (Ssta.Block_ssta.sigma blk > 0.0);
  (* worst-form mean must be at least every endpoint mean *)
  Array.iter
    (fun (f : Ssta.Canonical.t) ->
      Alcotest.(check bool) "worst dominates" true
        (Ssta.Block_ssta.mean blk >= f.Ssta.Canonical.mean -. 1e-9))
    blk.Ssta.Block_ssta.endpoint_forms

let test_block_ssta_criticalities () =
  let s = Lazy.force setup in
  let a2 = Lazy.force a2_fixture in
  let blk = Ssta.Block_ssta.run s ~models:(Ssta.Algorithm2.models a2) in
  let crit = Ssta.Block_ssta.criticalities ~samples:5000 ~seed:2 blk in
  check_close ~tol:1e-9 "sums to 1" 1.0 (Util.Arrayx.sum crit);
  Array.iter
    (fun c -> Alcotest.(check bool) "in [0,1]" true (c >= 0.0 && c <= 1.0))
    crit;
  (* the endpoint with the largest mean should carry nontrivial criticality *)
  let means = Array.map (fun (f : Ssta.Canonical.t) -> f.Ssta.Canonical.mean) blk.Ssta.Block_ssta.endpoint_forms in
  Alcotest.(check bool) "dominant endpoint critical" true
    (crit.(Util.Arrayx.argmax means) > 0.2)

let test_block_ssta_criticalities_jobs_bit_identical () =
  let s = Lazy.force setup in
  let a2 = Lazy.force a2_fixture in
  let blk = Ssta.Block_ssta.run s ~models:(Ssta.Algorithm2.models a2) in
  (* 1500 samples spans full and ragged 256-sample batches *)
  let c1 = Ssta.Block_ssta.criticalities ~samples:1500 ~seed:9 ~jobs:1 blk in
  let c2 = Ssta.Block_ssta.criticalities ~samples:1500 ~seed:9 ~jobs:2 blk in
  Array.iteri
    (fun i v ->
      if Int64.bits_of_float v <> Int64.bits_of_float c2.(i) then
        Alcotest.failf "criticality %d differs across jobs: %h vs %h" i v c2.(i))
    c1

let test_block_ssta_criticalities_traced () =
  let s = Lazy.force setup in
  let a2 = Lazy.force a2_fixture in
  let blk = Ssta.Block_ssta.run s ~models:(Ssta.Algorithm2.models a2) in
  Util.Trace.enable ();
  Fun.protect ~finally:Util.Trace.disable @@ fun () ->
  Util.Trace.reset ();
  ignore (Ssta.Block_ssta.criticalities ~samples:1234 ~seed:3 blk);
  Alcotest.(check int) "mc_samples counts every draw" 1234
    (Util.Trace.value Util.Trace.mc_samples);
  ignore (Ssta.Block_ssta.criticalities ~samples:100 ~seed:3 ~jobs:2 blk);
  Alcotest.(check int) "accumulates across calls and jobs" 1334
    (Util.Trace.value Util.Trace.mc_samples)

(* Clark's max_many is a left fold of a non-associative operator: the
   result is order-sensitive in its third moment but must stay stable in
   mean/sigma under permutation — the property macro stitching relies on
   when it merges per-block contributions in a fixed canonical order. *)
let test_clark_max_many_permutation_stable () =
  let rng = Prng.Rng.create ~seed:41 in
  let forms =
    List.init 7 (fun i ->
        canon
          ~mean:(10.0 +. (2.0 *. float_of_int i *. Prng.Rng.uniform rng))
          ~sens:(Array.init 3 (fun _ -> Prng.Gaussian.draw rng))
          ~indep:(Float.abs (Prng.Gaussian.draw rng)))
  in
  let base = Ssta.Canonical.max_many forms in
  let permutations =
    [ List.rev forms;
      (match forms with a :: b :: rest -> b :: a :: rest | l -> l);
      (match List.rev forms with a :: rest -> rest @ [ a ] | l -> l) ]
  in
  List.iteri
    (fun pi perm ->
      let m = Ssta.Canonical.max_many perm in
      let tag = Printf.sprintf "perm %d" pi in
      Alcotest.(check bool)
        (tag ^ " mean stable")
        true
        (Float.abs (m.Ssta.Canonical.mean -. base.Ssta.Canonical.mean)
        < 0.01 *. Float.abs base.Ssta.Canonical.mean);
      Alcotest.(check bool)
        (tag ^ " sigma stable")
        true
        (Float.abs (Ssta.Canonical.sigma m -. Ssta.Canonical.sigma base)
        < 0.05 *. Ssta.Canonical.sigma base))
    permutations;
  (* associativity up to re-Gaussianization: pairwise tree vs fold *)
  let tree =
    match forms with
    | [ a; b; c; d; e; f; g ] ->
        Ssta.Canonical.max_clark
          (Ssta.Canonical.max_clark
             (Ssta.Canonical.max_clark a b)
             (Ssta.Canonical.max_clark c d))
          (Ssta.Canonical.max_clark (Ssta.Canonical.max_clark e f) g)
    | _ -> assert false
  in
  Alcotest.(check bool) "tree vs fold mean" true
    (Float.abs (tree.Ssta.Canonical.mean -. base.Ssta.Canonical.mean)
    < 0.01 *. Float.abs base.Ssta.Canonical.mean);
  Alcotest.(check bool) "tree vs fold sigma" true
    (Float.abs (Ssta.Canonical.sigma tree -. Ssta.Canonical.sigma base)
    < 0.05 *. Ssta.Canonical.sigma base)

let test_block_ssta_bad_models () =
  let s = Lazy.force setup in
  let a2 = Lazy.force a2_fixture in
  let models = Ssta.Algorithm2.models a2 in
  Alcotest.(check bool) "raises" true
    (match Ssta.Block_ssta.run s ~models:(Array.sub models 0 2) with
    | _ -> false
    | exception Invalid_argument _ -> true)

let () =
  Alcotest.run "ssta"
    [
      ( "process",
        [
          Alcotest.test_case "paper default valid" `Quick test_process_default_valid;
          Alcotest.test_case "distinct kernels valid" `Quick test_process_distinct_valid;
          Alcotest.test_case "invalid kernel detected" `Quick test_process_invalid_kernel_detected;
        ] );
      ( "setup",
        [ Alcotest.test_case "locations match logic gates" `Quick test_setup_locations_match_logic_gates ] );
      ( "algorithm1",
        [
          Alcotest.test_case "block shapes" `Quick test_a1_block_shapes;
          Alcotest.test_case "standard-normal marginals" `Quick test_a1_marginals_standard_normal;
          Alcotest.test_case "correlation follows kernel" `Quick test_a1_correlation_follows_kernel;
          Alcotest.test_case "parameters independent" `Quick test_a1_parameters_mutually_independent;
          Alcotest.test_case "memory estimate" `Quick test_a1_memory_estimate;
        ] );
      ( "algorithm2",
        [
          Alcotest.test_case "structure" `Quick test_a2_structure;
          Alcotest.test_case "kernel sharing" `Quick test_a2_shared_kernel_shares_model;
          Alcotest.test_case "closure-carrying kernels (regression)" `Quick
            test_a2_prepare_closure_kernels;
          Alcotest.test_case "block shapes" `Quick test_a2_block_shapes;
          Alcotest.test_case "correlation follows kernel" `Quick test_a2_correlation_follows_kernel;
        ] );
      ( "grid_pca",
        [
          Alcotest.test_case "shapes and variance" `Quick test_grid_pca_shapes_and_variance;
          Alcotest.test_case "same cell fully correlated" `Quick test_grid_pca_same_cell_fully_correlated;
          Alcotest.test_case "r out of range" `Quick test_grid_pca_r_out_of_range;
        ] );
      ( "canonical",
        [
          Alcotest.test_case "algebra" `Quick test_canonical_algebra;
          Alcotest.test_case "covariance" `Quick test_canonical_covariance;
          Alcotest.test_case "dimension mismatch" `Quick test_canonical_mismatch;
          Alcotest.test_case "negative indep rejected" `Quick test_canonical_negative_indep;
          Alcotest.test_case "Clark max vs Monte Carlo" `Slow test_clark_max_vs_mc;
          Alcotest.test_case "max of identical forms" `Quick test_clark_max_identical_forms;
          Alcotest.test_case "max with dominant input" `Quick test_clark_max_dominant;
          Alcotest.test_case "max_many empty" `Quick test_max_many_empty;
          Alcotest.test_case "max_many permutation stable" `Quick
            test_clark_max_many_permutation_stable;
          Alcotest.test_case "quantile" `Quick test_canonical_quantile;
        ] );
      ( "block_ssta",
        [
          Alcotest.test_case "matches MC" `Slow test_block_ssta_matches_mc;
          Alcotest.test_case "structure" `Quick test_block_ssta_structure;
          Alcotest.test_case "criticalities" `Quick test_block_ssta_criticalities;
          Alcotest.test_case "criticalities jobs bit-identical" `Quick
            test_block_ssta_criticalities_jobs_bit_identical;
          Alcotest.test_case "criticalities traced" `Quick
            test_block_ssta_criticalities_traced;
          Alcotest.test_case "bad model count" `Quick test_block_ssta_bad_models;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "deterministic" `Quick test_run_mc_deterministic;
          Alcotest.test_case "batching statistically consistent" `Quick test_run_mc_batching_consistent;
          Alcotest.test_case "algorithms agree (paper claim)" `Slow test_algorithms_agree;
          Alcotest.test_case "compare metrics" `Quick test_compare_metrics_known;
          Alcotest.test_case "bad n rejected" `Quick test_run_mc_rejects_bad_n;
          Alcotest.test_case "bad sampler shape rejected" `Quick
            test_run_mc_rejects_bad_sampler_shape;
          Alcotest.test_case "single sample" `Quick test_run_mc_single_sample;
          Alcotest.test_case "jobs bit-identical" `Quick test_run_mc_jobs_bit_identical;
          Alcotest.test_case "compare skips zero-sigma endpoints" `Quick
            test_compare_skips_zero_sigma_endpoints;
          Alcotest.test_case "compare reports excluded endpoints" `Quick
            test_compare_excluded_endpoint_count;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "Fail policy names the faulted batch" `Quick
            test_run_mc_fail_policy_names_fault;
          Alcotest.test_case "Skip policy bit-identical across jobs" `Quick
            test_run_mc_skip_policy_bit_identical_across_jobs;
          Alcotest.test_case "all samples skipped raises" `Quick
            test_run_mc_all_skipped_raises;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "cholesky end to end" `Quick test_pipeline_cholesky_end_to_end;
          Alcotest.test_case "kle staged flow" `Quick test_pipeline_kle_stages;
          Alcotest.test_case "invalid kernel rejected" `Quick
            test_pipeline_rejects_invalid_kernel;
          Alcotest.test_case "mesh angle floor" `Quick test_pipeline_mesh_angle_floor;
          Alcotest.test_case "strict escalates degraded factorization" `Quick
            test_pipeline_strict_escalates_degraded_factorization;
        ] );
    ]
