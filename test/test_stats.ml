let check_close ?(tol = 1e-10) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

(* ---------- Welford ---------- *)

let test_welford_known () =
  let w = Stats.Welford.create () in
  List.iter (Stats.Welford.add w) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check_close "mean" 5.0 (Stats.Welford.mean w);
  (* sample variance of this classic dataset is 32/7 *)
  check_close "variance" (32.0 /. 7.0) (Stats.Welford.variance w);
  Alcotest.(check int) "count" 8 (Stats.Welford.count w)

let test_welford_matches_batch () =
  let data = Array.init 1000 (fun i -> sin (float_of_int i) *. 3.0) in
  let w = Stats.Welford.create () in
  Array.iter (Stats.Welford.add w) data;
  let s = Stats.Summary.of_array data in
  check_close ~tol:1e-9 "mean" s.Stats.Summary.mean (Stats.Welford.mean w);
  check_close ~tol:1e-9 "variance" s.Stats.Summary.variance (Stats.Welford.variance w)

let test_welford_empty_raises () =
  let w = Stats.Welford.create () in
  Alcotest.check_raises "empty" (Invalid_argument "Welford.mean: empty accumulator")
    (fun () -> ignore (Stats.Welford.mean w))

let test_welford_merge () =
  let data = Array.init 500 (fun i -> cos (float_of_int i)) in
  let a = Stats.Welford.create () and b = Stats.Welford.create () in
  Array.iteri (fun i x -> Stats.Welford.add (if i < 200 then a else b) x) data;
  let merged = Stats.Welford.merge a b in
  let whole = Stats.Welford.create () in
  Array.iter (Stats.Welford.add whole) data;
  check_close ~tol:1e-10 "merged mean" (Stats.Welford.mean whole) (Stats.Welford.mean merged);
  check_close ~tol:1e-10 "merged var" (Stats.Welford.variance whole) (Stats.Welford.variance merged)

let test_welford_merge_empty () =
  let a = Stats.Welford.create () in
  Stats.Welford.add a 3.0;
  Stats.Welford.add a 5.0;
  let merged = Stats.Welford.merge a (Stats.Welford.create ()) in
  check_close "mean preserved" 4.0 (Stats.Welford.mean merged)

let test_welford_single_sample () =
  (* regression: variance/std_dev raised for n = 1, crashing run_mc ~n:1 *)
  let w = Stats.Welford.create () in
  Stats.Welford.add w 42.0;
  check_close "mean" 42.0 (Stats.Welford.mean w);
  check_close ~tol:0.0 "variance is 0" 0.0 (Stats.Welford.variance w);
  check_close ~tol:0.0 "std_dev is 0" 0.0 (Stats.Welford.std_dev w);
  (* the empty accumulator must still raise *)
  let empty = Stats.Welford.create () in
  Alcotest.check_raises "empty variance raises"
    (Invalid_argument "Welford.variance: empty accumulator") (fun () ->
      ignore (Stats.Welford.variance empty))

(* ---------- Summary ---------- *)

let test_summary_fields () =
  let s = Stats.Summary.of_array [| 1.0; 2.0; 3.0; 4.0 |] in
  check_close "mean" 2.5 s.Stats.Summary.mean;
  check_close "min" 1.0 s.Stats.Summary.min;
  check_close "max" 4.0 s.Stats.Summary.max;
  check_close "variance" (5.0 /. 3.0) s.Stats.Summary.variance;
  Alcotest.(check int) "count" 4 s.Stats.Summary.count

let test_summary_too_small () =
  Alcotest.check_raises "singleton"
    (Invalid_argument "Summary.of_array: needs at least two samples") (fun () ->
      ignore (Stats.Summary.of_array [| 1.0 |]))

let test_quantile_interpolation () =
  let a = [| 10.0; 20.0; 30.0; 40.0 |] in
  check_close "median" 25.0 (Stats.Summary.quantile a 0.5);
  check_close "q0" 10.0 (Stats.Summary.quantile a 0.0);
  check_close "q1" 40.0 (Stats.Summary.quantile a 1.0);
  check_close "q1/3" 20.0 (Stats.Summary.quantile a (1.0 /. 3.0))

let test_quantile_unsorted_input () =
  let a = [| 30.0; 10.0; 40.0; 20.0 |] in
  check_close "median of unsorted" 25.0 (Stats.Summary.quantile a 0.5);
  (* input untouched *)
  Alcotest.(check (array (float 0.0))) "not mutated" [| 30.0; 10.0; 40.0; 20.0 |] a

let test_quantile_domain () =
  Alcotest.check_raises "p>1" (Invalid_argument "Summary.quantile: p outside [0, 1]")
    (fun () -> ignore (Stats.Summary.quantile [| 1.0 |] 1.5))

(* ---------- Correlation ---------- *)

let test_pearson_perfect () =
  let x = Array.init 50 float_of_int in
  let y = Array.map (fun v -> (2.0 *. v) +. 3.0) x in
  check_close ~tol:1e-12 "corr 1" 1.0 (Stats.Correlation.pearson x y);
  let y_neg = Array.map (fun v -> -.v) x in
  check_close ~tol:1e-12 "corr -1" (-1.0) (Stats.Correlation.pearson x y_neg)

let test_pearson_zero_variance () =
  Alcotest.check_raises "flat" (Invalid_argument "Correlation.pearson: zero variance")
    (fun () ->
      ignore (Stats.Correlation.pearson [| 1.0; 1.0; 1.0 |] [| 1.0; 2.0; 3.0 |]))

let test_covariance_known () =
  let x = [| 1.0; 2.0; 3.0 |] and y = [| 2.0; 4.0; 6.0 |] in
  (* cov = 2 * var(x) = 2 * 1 = 2 *)
  check_close "cov" 2.0 (Stats.Correlation.covariance x y)

let test_column_covariance_diagonal () =
  (* two independent-ish columns built deterministically *)
  let n = 2000 in
  let m =
    Linalg.Mat.init n 2 (fun i j ->
        if j = 0 then sin (float_of_int i *. 0.7) else cos (float_of_int i *. 1.3))
  in
  let cov = Stats.Correlation.column_covariance m in
  Alcotest.(check int) "shape" 2 (Linalg.Mat.rows cov);
  (* sin/cos streams at incommensurate frequencies are near-uncorrelated *)
  Alcotest.(check bool) "off-diagonal small" true (Float.abs (Linalg.Mat.get cov 0 1) < 0.05)

let test_column_correlation_unit_diagonal () =
  let n = 500 in
  let m =
    Linalg.Mat.init n 3 (fun i j -> sin (float_of_int ((i * (j + 1)) + j)))
  in
  let corr = Stats.Correlation.column_correlation m in
  for j = 0 to 2 do
    check_close ~tol:1e-12 "unit diagonal" 1.0 (Linalg.Mat.get corr j j)
  done

(* ---------- Histogram ---------- *)

let test_histogram_counts () =
  let h = Stats.Histogram.of_array ~lo:0.0 ~hi:10.0 ~bins:5 [| 1.0; 3.0; 5.0; 7.0; 9.0; 11.0; -1.0 |] in
  Alcotest.(check (array int)) "counts" [| 1; 1; 1; 1; 1 |] (Stats.Histogram.counts h);
  Alcotest.(check int) "overflow" 1 (Stats.Histogram.overflow h);
  Alcotest.(check int) "underflow" 1 (Stats.Histogram.underflow h);
  Alcotest.(check int) "total" 7 (Stats.Histogram.total h)

let test_histogram_edges () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:1.0 ~bins:4 in
  let edges = Stats.Histogram.bin_edges h in
  Alcotest.(check int) "edge count" 5 (Array.length edges);
  check_close "last edge" 1.0 edges.(4)

let test_histogram_boundary_values () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:1.0 ~bins:2 in
  Stats.Histogram.add h 0.0;
  (* lo is inclusive *)
  Stats.Histogram.add h 1.0;
  (* hi is exclusive -> overflow *)
  Alcotest.(check (array int)) "bins" [| 1; 0 |] (Stats.Histogram.counts h);
  Alcotest.(check int) "overflow" 1 (Stats.Histogram.overflow h)

let test_histogram_invalid () =
  Alcotest.check_raises "bad range" (Invalid_argument "Histogram.create: requires lo < hi")
    (fun () -> ignore (Stats.Histogram.create ~lo:1.0 ~hi:1.0 ~bins:3))

let test_histogram_ascii_nonempty () =
  let h = Stats.Histogram.of_array ~lo:0.0 ~hi:1.0 ~bins:3 [| 0.1; 0.5; 0.9 |] in
  Alcotest.(check bool) "renders" true (String.length (Stats.Histogram.to_ascii h) > 0)

(* ---------- qcheck ---------- *)

let arb_samples =
  QCheck.(list_of_size Gen.(int_range 2 60) (float_range (-100.0) 100.0))

let prop_quantile_monotone =
  QCheck.Test.make ~name:"quantiles are monotone in p" ~count:100 arb_samples
    (fun l ->
      let a = Array.of_list l in
      Stats.Summary.quantile a 0.25 <= Stats.Summary.quantile a 0.75)

let prop_variance_nonneg =
  QCheck.Test.make ~name:"variance is non-negative" ~count:100 arb_samples
    (fun l -> (Stats.Summary.of_array (Array.of_list l)).Stats.Summary.variance >= 0.0)

let prop_mean_within_range =
  QCheck.Test.make ~name:"mean lies within [min, max]" ~count:100 arb_samples
    (fun l ->
      let s = Stats.Summary.of_array (Array.of_list l) in
      s.Stats.Summary.mean >= s.Stats.Summary.min -. 1e-9
      && s.Stats.Summary.mean <= s.Stats.Summary.max +. 1e-9)

let welford_of_list l =
  let w = Stats.Welford.create () in
  List.iter (Stats.Welford.add w) l;
  w

let welford_close a b =
  Stats.Welford.count a = Stats.Welford.count b
  && Float.abs (Stats.Welford.mean a -. Stats.Welford.mean b) < 1e-9
  && Float.abs (Stats.Welford.variance a -. Stats.Welford.variance b) < 1e-9

let arb_nonempty =
  QCheck.(list_of_size Gen.(int_range 1 40) (float_range (-100.0) 100.0))

let prop_merge_associative =
  QCheck.Test.make ~name:"Welford.merge is associative" ~count:100
    QCheck.(triple arb_nonempty arb_nonempty arb_nonempty)
    (fun (la, lb, lc) ->
      let a () = welford_of_list la
      and b () = welford_of_list lb
      and c () = welford_of_list lc in
      welford_close
        (Stats.Welford.merge (Stats.Welford.merge (a ()) (b ())) (c ()))
        (Stats.Welford.merge (a ()) (Stats.Welford.merge (b ()) (c ()))))

let prop_merge_permutation_invariant =
  QCheck.Test.make ~name:"Welford.merge is order-insensitive" ~count:100
    QCheck.(triple arb_nonempty arb_nonempty arb_nonempty)
    (fun (la, lb, lc) ->
      let merged order =
        List.fold_left
          (fun acc l -> Stats.Welford.merge acc (welford_of_list l))
          (Stats.Welford.create ()) order
      in
      let sequential = welford_of_list (la @ lb @ lc) in
      welford_close (merged [ la; lb; lc ]) (merged [ lc; la; lb ])
      && welford_close (merged [ la; lb; lc ]) sequential)

let () =
  Alcotest.run "stats"
    [
      ( "welford",
        [
          Alcotest.test_case "known dataset" `Quick test_welford_known;
          Alcotest.test_case "matches batch summary" `Quick test_welford_matches_batch;
          Alcotest.test_case "empty raises" `Quick test_welford_empty_raises;
          Alcotest.test_case "merge equivalence" `Quick test_welford_merge;
          Alcotest.test_case "merge with empty" `Quick test_welford_merge_empty;
          Alcotest.test_case "single sample" `Quick test_welford_single_sample;
        ] );
      ( "summary",
        [
          Alcotest.test_case "fields" `Quick test_summary_fields;
          Alcotest.test_case "too small raises" `Quick test_summary_too_small;
          Alcotest.test_case "quantile interpolation" `Quick test_quantile_interpolation;
          Alcotest.test_case "quantile unsorted input" `Quick test_quantile_unsorted_input;
          Alcotest.test_case "quantile domain" `Quick test_quantile_domain;
        ] );
      ( "correlation",
        [
          Alcotest.test_case "perfect correlation" `Quick test_pearson_perfect;
          Alcotest.test_case "zero variance raises" `Quick test_pearson_zero_variance;
          Alcotest.test_case "covariance known" `Quick test_covariance_known;
          Alcotest.test_case "column covariance" `Quick test_column_covariance_diagonal;
          Alcotest.test_case "correlation unit diagonal" `Quick test_column_correlation_unit_diagonal;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "counts and flows" `Quick test_histogram_counts;
          Alcotest.test_case "bin edges" `Quick test_histogram_edges;
          Alcotest.test_case "boundary values" `Quick test_histogram_boundary_values;
          Alcotest.test_case "invalid config raises" `Quick test_histogram_invalid;
          Alcotest.test_case "ascii rendering" `Quick test_histogram_ascii_nonempty;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_quantile_monotone; prop_variance_nonneg; prop_mean_within_range;
            prop_merge_associative; prop_merge_permutation_invariant ] );
    ]
