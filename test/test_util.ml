let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec loop i = i + nn <= nh && (String.sub hay i nn = needle || loop (i + 1)) in
  nn = 0 || loop 0

let check_float = Alcotest.(check (float 1e-12))

let test_float_range () =
  let r = Util.Arrayx.float_range ~start:0.0 ~stop:1.0 ~count:5 in
  Alcotest.(check int) "count" 5 (Array.length r);
  check_float "first" 0.0 r.(0);
  check_float "last" 1.0 r.(4);
  check_float "step" 0.25 r.(1)

let test_float_range_negative () =
  let r = Util.Arrayx.float_range ~start:(-2.0) ~stop:2.0 ~count:3 in
  check_float "middle" 0.0 r.(1)

let test_float_range_invalid () =
  Alcotest.check_raises "count 1" (Invalid_argument "Arrayx.float_range: count must be >= 2")
    (fun () -> ignore (Util.Arrayx.float_range ~start:0.0 ~stop:1.0 ~count:1))

let test_argmax () =
  Alcotest.(check int) "argmax" 2 (Util.Arrayx.argmax [| 1.0; 3.0; 7.0; 2.0 |]);
  Alcotest.(check int) "first max wins" 1 (Util.Arrayx.argmax [| 1.0; 7.0; 7.0 |])

let test_argmin () =
  Alcotest.(check int) "argmin" 0 (Util.Arrayx.argmin [| -1.0; 3.0; 7.0 |])

let test_arg_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Arrayx: empty array") (fun () ->
      ignore (Util.Arrayx.argmax [||]))

let test_sum_mean () =
  check_float "sum" 6.0 (Util.Arrayx.sum [| 1.0; 2.0; 3.0 |]);
  check_float "sum empty" 0.0 (Util.Arrayx.sum [||]);
  check_float "mean" 2.0 (Util.Arrayx.mean [| 1.0; 2.0; 3.0 |])

let test_max_abs () =
  check_float "max_abs" 5.0 (Util.Arrayx.max_abs [| -5.0; 3.0 |]);
  check_float "max_abs empty" 0.0 (Util.Arrayx.max_abs [||])

let test_sort_desc_with_perm () =
  let sorted, perm = Util.Arrayx.sort_desc_with_perm [| 1.0; 3.0; 2.0 |] in
  Alcotest.(check (array (float 0.0))) "sorted" [| 3.0; 2.0; 1.0 |] sorted;
  Alcotest.(check (array int)) "perm" [| 1; 2; 0 |] perm

let test_sort_perm_roundtrip () =
  let a = [| 0.3; -1.0; 5.0; 2.0; 2.0 |] in
  let sorted, perm = Util.Arrayx.sort_desc_with_perm a in
  Array.iteri (fun i p -> Alcotest.(check (float 0.0)) "perm maps" a.(p) sorted.(i)) perm

let test_timer_positive () =
  let t = Util.Timer.start () in
  let acc = ref 0.0 in
  for i = 1 to 10000 do
    acc := !acc +. float_of_int i
  done;
  ignore !acc;
  Alcotest.(check bool) "elapsed >= 0" true (Util.Timer.elapsed_s t >= 0.0)

let test_timer_time () =
  let v, dt = Util.Timer.time (fun () -> 42) in
  Alcotest.(check int) "result" 42 v;
  Alcotest.(check bool) "time >= 0" true (dt >= 0.0)

let test_table_renders () =
  let t = Util.Table.create ~columns:[ ("name", Util.Table.Left); ("x", Util.Table.Right) ] in
  Util.Table.add_row t [ "alpha"; "1.5" ];
  Util.Table.add_rule t;
  Util.Table.add_row t [ "b"; "10.25" ];
  let s = Util.Table.to_string t in
  Alcotest.(check bool) "contains header" true (contains_substring s "name");
  Alcotest.(check bool) "contains cell" true (contains_substring s "alpha")

let test_table_alignment () =
  let t = Util.Table.create ~columns:[ ("c", Util.Table.Right) ] in
  Util.Table.add_row t [ "7" ];
  let s = Util.Table.to_string t in
  (* right-aligned single char under header width 1: "| 7 |" *)
  Alcotest.(check bool) "has cell" true (contains_substring s "| 7 |")

let test_table_mismatch () =
  let t = Util.Table.create ~columns:[ ("a", Util.Table.Left) ] in
  Alcotest.check_raises "mismatch" (Invalid_argument "Table.add_row: cell count mismatch")
    (fun () -> Util.Table.add_row t [ "x"; "y" ])

(* ---------- Pool ---------- *)

let test_pool_covers_all_indices () =
  let pool = Util.Pool.create ~num_domains:3 () in
  Fun.protect
    ~finally:(fun () -> Util.Pool.shutdown pool)
    (fun () ->
      let n = 1013 in
      let hits = Array.make n 0 in
      let lock = Mutex.create () in
      Util.Pool.parallel_for pool ~chunk:7 ~n (fun lo hi ->
          Alcotest.(check bool) "lo chunk-aligned" true (lo mod 7 = 0);
          Alcotest.(check bool) "range non-empty" true (lo < hi && hi <= n);
          Mutex.lock lock;
          for i = lo to hi - 1 do
            hits.(i) <- hits.(i) + 1
          done;
          Mutex.unlock lock);
      Array.iteri
        (fun i c -> Alcotest.(check int) (Printf.sprintf "index %d hit once" i) 1 c)
        hits)

let test_pool_seq_matches_parallel () =
  let sum_with pool =
    let acc = Atomic.make 0 in
    Util.Pool.parallel_for pool ~chunk:16 ~n:500 (fun lo hi ->
        let s = ref 0 in
        for i = lo to hi - 1 do
          s := !s + i
        done;
        ignore (Atomic.fetch_and_add acc !s));
    Atomic.get acc
  in
  let pool = Util.Pool.create ~num_domains:2 () in
  Fun.protect
    ~finally:(fun () -> Util.Pool.shutdown pool)
    (fun () ->
      Alcotest.(check int) "seq and parallel sums equal" (sum_with Util.Pool.seq)
        (sum_with pool);
      Alcotest.(check int) "expected sum" (500 * 499 / 2) (sum_with pool))

let test_pool_propagates_exception () =
  let pool = Util.Pool.create ~num_domains:2 () in
  Fun.protect
    ~finally:(fun () -> Util.Pool.shutdown pool)
    (fun () ->
      Alcotest.(check bool) "body exception re-raised in caller" true
        (match
           Util.Pool.parallel_for pool ~chunk:1 ~n:64 (fun lo _ ->
               if lo = 13 then failwith "boom")
         with
        | () -> false
        | exception Failure m -> m = "boom");
      (* the pool must stay usable after a failed job *)
      let count = Atomic.make 0 in
      Util.Pool.parallel_for pool ~chunk:1 ~n:10 (fun lo hi ->
          ignore (Atomic.fetch_and_add count (hi - lo)));
      Alcotest.(check int) "pool alive after exception" 10 (Atomic.get count))

let test_pool_nested_runs_sequentially () =
  let pool = Util.Pool.create ~num_domains:2 () in
  Fun.protect
    ~finally:(fun () -> Util.Pool.shutdown pool)
    (fun () ->
      let inner_total = Atomic.make 0 in
      Util.Pool.parallel_for pool ~chunk:4 ~n:16 (fun _ _ ->
          (* a nested parallel_for must degrade to sequential, not deadlock *)
          Util.Pool.parallel_for pool ~chunk:2 ~n:8 (fun lo hi ->
              ignore (Atomic.fetch_and_add inner_total (hi - lo))));
      Alcotest.(check int) "nested bodies all ran" (4 * 8) (Atomic.get inner_total))

let test_pool_with_jobs () =
  Alcotest.(check int) "jobs:1 gives the sequential pool" 1
    (Util.Pool.with_jobs ~jobs:1 Util.Pool.size);
  Alcotest.(check int) "jobs:3 gives 3 lanes" 3
    (Util.Pool.with_jobs ~jobs:3 Util.Pool.size);
  Alcotest.(check bool) "jobs:0 clamps to sequential" true
    (Util.Pool.with_jobs ~jobs:0 Util.Pool.size = 1)

let test_fmt_float () =
  Alcotest.(check string) "default" "1.500" (Util.Table.fmt_float 1.5);
  Alcotest.(check string) "digits" "1.50" (Util.Table.fmt_float ~digits:2 1.5)

(* ---------- Diag ---------- *)

let test_diag_record_and_query () =
  let sink = Util.Diag.create () in
  Alcotest.(check int) "empty" 0 (Util.Diag.length sink);
  Alcotest.(check bool) "no max severity" true (Util.Diag.max_severity sink = None);
  Util.Diag.record ~sink Util.Diag.Info `Fault_injected ~stage:"t" "a";
  Util.Diag.record ~sink Util.Diag.Warning `Degraded_fallback ~stage:"t" "b";
  Util.Diag.record ~sink Util.Diag.Warning `Not_psd ~stage:"t" "c";
  Alcotest.(check int) "length" 3 (Util.Diag.length sink);
  Alcotest.(check int) "warnings" 2
    (Util.Diag.count ~min_severity:Util.Diag.Warning sink);
  Alcotest.(check int) "by code" 1 (Util.Diag.count ~code:`Not_psd sink);
  Alcotest.(check bool) "max severity" true
    (Util.Diag.max_severity sink = Some Util.Diag.Warning);
  (match Util.Diag.events sink with
  | [ a; b; c ] ->
      Alcotest.(check string) "oldest first" "a" a.Util.Diag.detail;
      Alcotest.(check string) "middle" "b" b.Util.Diag.detail;
      Alcotest.(check string) "newest last" "c" c.Util.Diag.detail
  | _ -> Alcotest.fail "expected 3 events");
  Util.Diag.clear sink;
  Alcotest.(check int) "cleared" 0 (Util.Diag.length sink)

let test_diag_no_sink_is_noop () =
  (* library code records unconditionally; without a sink nothing happens *)
  Util.Diag.record Util.Diag.Warning `Non_finite ~stage:"t" "dropped"

let test_diag_fail_records_and_raises () =
  let sink = Util.Diag.create () in
  (match Util.Diag.fail ~sink `No_convergence ~stage:"solver" "budget exhausted" with
  | _ -> Alcotest.fail "expected Failure"
  | exception Util.Diag.Failure e ->
      Alcotest.(check bool) "error severity" true (e.Util.Diag.severity = Util.Diag.Error);
      Alcotest.(check bool) "code" true (e.Util.Diag.code = `No_convergence);
      Alcotest.(check string) "stage" "solver" e.Util.Diag.stage);
  Alcotest.(check int) "recorded" 1 (Util.Diag.count ~min_severity:Util.Diag.Error sink)

let test_diag_to_string () =
  let e =
    { Util.Diag.severity = Util.Diag.Warning; code = `Not_psd; stage = "mvn"; detail = "x" }
  in
  let s = Util.Diag.to_string e in
  Alcotest.(check bool) "has severity" true (contains_substring s "warning");
  Alcotest.(check bool) "has code" true (contains_substring s "not-psd");
  Alcotest.(check bool) "has stage" true (contains_substring s "mvn")

let test_diag_thread_safety () =
  let sink = Util.Diag.create () in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to 250 do
              Util.Diag.record ~sink Util.Diag.Info `Fault_injected ~stage:"d"
                (Printf.sprintf "%d.%d" d i)
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "all events kept" 1000 (Util.Diag.length sink)

(* ---------- Fault ---------- *)

let test_fault_corrupt_kinds () =
  Alcotest.(check bool) "nan" true (Float.is_nan (Util.Fault.corrupt Util.Fault.Nan 3.0));
  check_float "value" 7.0 (Util.Fault.corrupt (Util.Fault.Value 7.0) 3.0);
  check_float "scale" 6.0 (Util.Fault.corrupt (Util.Fault.Scale 2.0) 3.0);
  check_float "offset" 2.5 (Util.Fault.corrupt (Util.Fault.Offset (-0.5)) 3.0)

let test_fault_plan_selects_first_only () =
  let p = Util.Fault.plan ~first:2 Util.Fault.Nan in
  let out = Array.init 5 (fun i -> Util.Fault.apply p (float_of_int i)) in
  Alcotest.(check int) "calls counted" 5 (Util.Fault.calls p);
  Alcotest.(check int) "fired once" 1 (Util.Fault.fired p);
  Array.iteri
    (fun i v ->
      if i = 2 then Alcotest.(check bool) "faulted call" true (Float.is_nan v)
      else check_float "clean call" (float_of_int i) v)
    out

let test_fault_plan_periodic_with_limit () =
  let p = Util.Fault.plan ~first:1 ~period:2 ~limit:3 (Util.Fault.Value 0.0) in
  let out = Array.init 10 (fun _ -> Util.Fault.apply p 1.0) in
  (* selected: calls 1, 3, 5, 7, 9 — limit caps at 3 *)
  Alcotest.(check int) "fired" 3 (Util.Fault.fired p);
  let faulted = Array.to_list out |> List.filteri (fun i _ -> i = 1 || i = 3 || i = 5) in
  List.iter (fun v -> check_float "zeroed" 0.0 v) faulted;
  check_float "past limit untouched" 1.0 out.(7);
  Util.Fault.reset p;
  Alcotest.(check int) "reset calls" 0 (Util.Fault.calls p);
  Alcotest.(check int) "reset fired" 0 (Util.Fault.fired p);
  Alcotest.(check bool) "fires again after reset" true
    (Float.is_finite (Util.Fault.apply p 1.0) && Util.Fault.apply p 1.0 = 0.0)

(* the I/O fault plans behind Persist.Store and the chaos harness share
   the same counter/selection engine as the numeric plans *)
let test_fault_io_plan_selection () =
  let p = Util.Fault.io_plan ~first:1 ~period:3 ~limit:2 Util.Fault.Read_error in
  let fired = Array.init 10 (fun _ -> Util.Fault.fires p) in
  (* selected: calls 1, 4, 7, ... — limit caps at 2 *)
  Array.iteri
    (fun i f -> Alcotest.(check bool) (Printf.sprintf "call %d" i) (i = 1 || i = 4) f)
    fired;
  Alcotest.(check int) "calls counted" 10 (Util.Fault.calls p);
  Alcotest.(check int) "fired capped by limit" 2 (Util.Fault.fired p);
  Alcotest.(check bool) "kind preserved" true (Util.Fault.kind p = Util.Fault.Read_error)

let test_fault_io_plan_one_shot_and_fire () =
  (* period 0 = one-shot at [first]; [fire] returns the kind exactly there *)
  let p = Util.Fault.io_plan ~first:2 (Util.Fault.Latency 5.0) in
  Alcotest.(check bool) "call 0 clean" true (Util.Fault.fire p = None);
  Alcotest.(check bool) "call 1 clean" true (Util.Fault.fire p = None);
  (match Util.Fault.fire p with
  | Some (Util.Fault.Latency ms) -> check_float "latency payload" 5.0 ms
  | _ -> Alcotest.fail "expected the latency fault at call 2");
  Alcotest.(check bool) "call 3 clean" true (Util.Fault.fire p = None);
  Alcotest.(check string) "io_kind_name" "latency(5ms)"
    (Util.Fault.io_kind_name (Util.Fault.Latency 5.0))

(* ---------- histogram ---------- *)

(* a deterministic spread of latencies across several powers of two,
   including the exact-bucket range below 32 *)
let hist_samples =
  Array.init 4096 (fun i -> (i * 2654435761) land 0xFFFFF)

let record_all h samples = Array.iter (Util.Histogram.record h) samples

let hist_state h =
  (Util.Histogram.count h, Util.Histogram.sum h, Util.Histogram.buckets h)

let test_histogram_domain_determinism () =
  (* the same multiset of samples recorded on one domain vs. racing across
     two domains yields bit-identical buckets — addition commutes *)
  let h1 = Util.Histogram.create () in
  record_all h1 hist_samples;
  let h2 = Util.Histogram.create () in
  let n = Array.length hist_samples in
  let half tid () =
    let i = ref tid in
    while !i < n do
      Util.Histogram.record h2 hist_samples.(!i);
      i := !i + 2
    done
  in
  let d0 = Domain.spawn (half 0) and d1 = Domain.spawn (half 1) in
  Domain.join d0;
  Domain.join d1;
  Alcotest.(check bool) "1-domain = 2-domain" true (hist_state h1 = hist_state h2);
  List.iter
    (fun p ->
      Alcotest.(check int)
        (Printf.sprintf "quantile %.3f" p)
        (Util.Histogram.quantile h1 p) (Util.Histogram.quantile h2 p))
    [ 0.5; 0.9; 0.99; 0.999 ]

let test_histogram_shard_merge () =
  (* two shards each record a disjoint half; merging (in either order)
     equals one histogram that saw everything *)
  let whole = Util.Histogram.create () in
  record_all whole hist_samples;
  let n = Array.length hist_samples in
  let a = Util.Histogram.create () and b = Util.Histogram.create () in
  Array.iteri
    (fun i v -> Util.Histogram.record (if i < n / 2 then a else b) v)
    hist_samples;
  let m1 = Util.Histogram.create () in
  Util.Histogram.merge_into ~dst:m1 a;
  Util.Histogram.merge_into ~dst:m1 b;
  let m2 = Util.Histogram.create () in
  Util.Histogram.merge_into ~dst:m2 b;
  Util.Histogram.merge_into ~dst:m2 a;
  Alcotest.(check bool) "a+b = whole" true (hist_state m1 = hist_state whole);
  Alcotest.(check bool) "merge commutes" true (hist_state m1 = hist_state m2)

let test_histogram_json_roundtrip () =
  let h = Util.Histogram.create () in
  record_all h hist_samples;
  (match Util.Histogram.of_json (Util.Histogram.to_json h) with
  | Error msg -> Alcotest.failf "decode failed: %s" msg
  | Ok back ->
      Alcotest.(check bool) "round-trip" true (hist_state back = hist_state h));
  let empty = Util.Histogram.create () in
  (match Util.Histogram.of_json (Util.Histogram.to_json empty) with
  | Error msg -> Alcotest.failf "empty decode failed: %s" msg
  | Ok back -> Alcotest.(check int) "empty count" 0 (Util.Histogram.count back));
  (* foreign layouts and versions are rejected, not misinterpreted *)
  let reject label json =
    match Util.Histogram.of_json json with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s accepted" label
  in
  let module J = Util.Jsonx in
  reject "wrong layout"
    (J.Obj
       [ ("v", J.Num 1.0); ("layout", J.Str "linear-64"); ("count", J.Num 0.0);
         ("sum", J.Num 0.0); ("buckets", J.List []) ]);
  reject "future version"
    (J.Obj
       [ ("v", J.Num 9.0); ("layout", J.Str Util.Histogram.layout);
         ("count", J.Num 0.0); ("sum", J.Num 0.0); ("buckets", J.List []) ]);
  reject "count mismatch"
    (J.Obj
       [ ("v", J.Num 1.0); ("layout", J.Str Util.Histogram.layout);
         ("count", J.Num 5.0); ("sum", J.Num 0.0); ("buckets", J.List []) ])

let test_histogram_quantiles () =
  let h = Util.Histogram.create () in
  record_all h hist_samples;
  let q p = Util.Histogram.quantile h p in
  (* monotone in p, bounded by the max bucket *)
  Alcotest.(check bool) "p50 <= p90" true (q 0.5 <= q 0.9);
  Alcotest.(check bool) "p90 <= p99" true (q 0.9 <= q 0.99);
  Alcotest.(check bool) "p99 <= p999" true (q 0.99 <= q 0.999);
  Alcotest.(check bool) "p999 <= max" true (q 0.999 <= Util.Histogram.max_value h);
  (* the log-linear layout bounds relative error: the bucket midpoint of
     any value is within ~3.2% of the value itself (1/32 sub-buckets) *)
  Array.iter
    (fun v ->
      let mid = Util.Histogram.bucket_value (Util.Histogram.bucket_index v) in
      let err = abs_float (float_of_int (mid - v)) /. float_of_int (max v 1) in
      if v >= 32 && err > 0.033 then
        Alcotest.failf "bucket midpoint of %d is %d (%.1f%% off)" v mid (err *. 100.))
    hist_samples;
  (* negative values clamp to bucket 0 *)
  let neg = Util.Histogram.create () in
  Util.Histogram.record neg (-5);
  Alcotest.(check int) "negative clamps" 0 (Util.Histogram.quantile neg 1.0)

(* ---------- minimal JSON parser (for exporter round-trip checks) ---------- *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let bad msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then s.[!pos] else bad "unexpected end" in
    let next () =
      let c = peek () in
      incr pos;
      c
    in
    let skip_ws () =
      while
        !pos < n
        && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
      do
        incr pos
      done
    in
    let expect c =
      let g = next () in
      if g <> c then bad (Printf.sprintf "expected '%c', got '%c'" c g)
    in
    let literal lit v =
      let l = String.length lit in
      if !pos + l <= n && String.sub s !pos l = lit then begin
        pos := !pos + l;
        v
      end
      else bad ("bad literal, wanted " ^ lit)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec loop () =
        match next () with
        | '"' -> Buffer.contents b
        | '\\' ->
            (match next () with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'n' -> Buffer.add_char b '\n'
            | 'r' -> Buffer.add_char b '\r'
            | 't' -> Buffer.add_char b '\t'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'u' ->
                if !pos + 4 > n then bad "truncated \\u escape";
                let code = int_of_string ("0x" ^ String.sub s !pos 4) in
                pos := !pos + 4;
                (* ASCII is all the exporters emit; keep others symbolic *)
                if code < 0x80 then Buffer.add_char b (Char.chr code)
                else Buffer.add_string b (Printf.sprintf "\\u%04x" code)
            | c -> bad (Printf.sprintf "bad escape '%c'" c));
            loop ()
        | c -> Buffer.add_char b c; loop ()
      in
      loop ()
    in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | '"' -> Str (parse_string ())
      | '{' ->
          incr pos;
          skip_ws ();
          if peek () = '}' then begin
            incr pos;
            Obj []
          end
          else
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              (match next () with
              | ',' -> members ((k, v) :: acc)
              | '}' -> Obj (List.rev ((k, v) :: acc))
              | c -> bad (Printf.sprintf "bad object separator '%c'" c))
            in
            members []
      | '[' ->
          incr pos;
          skip_ws ();
          if peek () = ']' then begin
            incr pos;
            Arr []
          end
          else
            let rec elems acc =
              let v = parse_value () in
              skip_ws ();
              (match next () with
              | ',' -> elems (v :: acc)
              | ']' -> Arr (List.rev (v :: acc))
              | c -> bad (Printf.sprintf "bad array separator '%c'" c))
            in
            elems []
      | 't' -> literal "true" (Bool true)
      | 'f' -> literal "false" (Bool false)
      | 'n' -> literal "null" Null
      | c when is_num_char c ->
          let start = !pos in
          while !pos < n && is_num_char s.[!pos] do
            incr pos
          done;
          Num (float_of_string (String.sub s start (!pos - start)))
      | c -> bad (Printf.sprintf "unexpected '%c'" c)
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then bad "trailing garbage";
    v
end

let obj_field name j =
  match j with
  | Json.Obj kvs -> (
      match List.assoc_opt name kvs with
      | Some v -> v
      | None -> Alcotest.fail ("missing JSON field: " ^ name))
  | _ -> Alcotest.fail ("expected JSON object when reading field: " ^ name)

let get_string = function
  | Json.Str s -> s
  | _ -> Alcotest.fail "expected JSON string"

let get_num = function
  | Json.Num f -> f
  | _ -> Alcotest.fail "expected JSON number"

let get_list = function
  | Json.Arr l -> l
  | _ -> Alcotest.fail "expected JSON array"

(* ---------- Diag JSON ---------- *)

let test_diag_to_json () =
  let e =
    {
      Util.Diag.severity = Util.Diag.Warning;
      code = `Not_psd;
      stage = "mvn";
      detail = "alpha \"quoted\"\nline2";
    }
  in
  let json = Json.parse (Util.Diag.to_json e) in
  Alcotest.(check string) "severity" "warning"
    (get_string (obj_field "severity" json));
  Alcotest.(check string) "code" "not-psd" (get_string (obj_field "code" json));
  Alcotest.(check string) "stage" "mvn" (get_string (obj_field "stage" json));
  Alcotest.(check string) "detail escaping round-trips" "alpha \"quoted\"\nline2"
    (get_string (obj_field "detail" json))

(* ---------- Trace ---------- *)

(* Each test owns the (global) tracer: enable + reset on entry, disable on
   exit even when the assertion raises. *)
let with_tracer f =
  Util.Trace.enable ();
  Util.Trace.reset ();
  Fun.protect ~finally:(fun () -> Util.Trace.disable ()) f

let test_trace_now_ns_monotonic () =
  let a = Util.Trace.now_ns () in
  let b = Util.Trace.now_ns () in
  Alcotest.(check bool) "positive and monotonic" true (a > 0 && b >= a)

let test_trace_span_paths_and_exceptions () =
  with_tracer @@ fun () ->
  Alcotest.(check string) "top-level path empty" "" (Util.Trace.current_path ());
  let v =
    Util.Trace.with_span "outer" (fun () ->
        Util.Trace.with_span "inner" (fun () -> Util.Trace.current_path ()))
  in
  Alcotest.(check string) "nested path" "outer;inner" v;
  (match Util.Trace.with_span "boom" (fun () -> failwith "payload") with
  | () -> Alcotest.fail "expected Failure"
  | exception Stdlib.Failure m -> Alcotest.(check string) "re-raised" "payload" m);
  Alcotest.(check string) "stack unwound after raise" ""
    (Util.Trace.current_path ());
  Alcotest.(check (list (pair string int))) "all spans recorded"
    [ ("boom", 1); ("outer", 1); ("outer;inner", 1) ]
    (Util.Trace.structure ());
  let tree = Util.Trace.span_tree () in
  let outer = List.find (fun n -> n.Util.Trace.name = "outer") tree in
  match outer.Util.Trace.children with
  | [ inner ] ->
      Alcotest.(check string) "child path" "outer;inner" inner.Util.Trace.path;
      Alcotest.(check int) "self + child = total" outer.Util.Trace.total_ns
        (outer.Util.Trace.self_ns + inner.Util.Trace.total_ns)
  | _ -> Alcotest.fail "expected exactly one child under outer"

(* The pipeline's instrumentation pattern: structural spans on the
   submitting domain, parallel_for bodies inside them, work counters
   bulk-added from the problem shape. *)
let run_traced_workload ~jobs =
  with_tracer @@ fun () ->
  let work = Util.Trace.counter "test.work" in
  Util.Pool.with_jobs ~jobs @@ fun pool ->
  Util.Trace.with_span "prepare" (fun () ->
      Util.Trace.with_span "assemble" (fun () -> Util.Trace.add work 7));
  Util.Trace.with_span "run" (fun () ->
      for _batch = 1 to 3 do
        Util.Trace.with_span "batch" (fun () ->
            let acc = Atomic.make 0 in
            Util.Pool.parallel_for pool ~chunk:4 ~n:64 (fun lo hi ->
                ignore (Atomic.fetch_and_add acc (hi - lo)));
            Util.Trace.add work (Atomic.get acc))
      done);
  (Util.Trace.structure (), Util.Trace.value work)

let test_trace_structure_jobs_invariant () =
  let s1, w1 = run_traced_workload ~jobs:1 in
  let s2, w2 = run_traced_workload ~jobs:2 in
  Alcotest.(check (list (pair string int))) "structure identical -j1 vs -j2" s1 s2;
  Alcotest.(check int) "work counter identical -j1 vs -j2" w1 w2;
  Alcotest.(check (list (pair string int))) "expected shape"
    [ ("prepare", 1); ("prepare;assemble", 1); ("run", 1); ("run;batch", 3) ]
    s1

let test_trace_counter_atomicity () =
  with_tracer @@ fun () ->
  let c = Util.Trace.counter "test.atomic" in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 25_000 do
              Util.Trace.incr c
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "no lost updates across domains" 100_000
    (Util.Trace.value c);
  Alcotest.(check bool) "visible in counters ()" true
    (List.mem_assoc "test.atomic" (Util.Trace.counters ()))

let test_trace_chrome_export_wellformed () =
  let path = Filename.temp_file "trace_test" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path)
  @@ fun () ->
  (with_tracer @@ fun () ->
   Util.Trace.with_span ~attrs:[ ("k", "v") ] "outer" (fun () ->
       Util.Trace.with_span "inner" (fun () ->
           Util.Diag.record Util.Diag.Warning `Non_finite ~stage:"test"
             "bridged instant");
       Util.Trace.add (Util.Trace.counter "test.export") 11);
   Util.Trace.write_chrome_trace path);
  let ic = open_in_bin path in
  let raw =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let json = Json.parse raw in
  Alcotest.(check string) "displayTimeUnit" "ms"
    (get_string (obj_field "displayTimeUnit" json));
  let events = get_list (obj_field "traceEvents" json) in
  Alcotest.(check bool) "has events" true (List.length events >= 5);
  List.iter
    (fun e ->
      ignore (get_string (obj_field "name" e));
      ignore (get_string (obj_field "ph" e));
      ignore (get_num (obj_field "pid" e));
      ignore (get_num (obj_field "tid" e)))
    events;
  let ph e = get_string (obj_field "ph" e) in
  let name e = get_string (obj_field "name" e) in
  Alcotest.(check bool) "process_name metadata" true
    (List.exists (fun e -> ph e = "M" && name e = "process_name") events);
  let inner = List.find (fun e -> ph e = "X" && name e = "inner") events in
  Alcotest.(check string) "nested path arg" "outer;inner"
    (get_string (obj_field "path" (obj_field "args" inner)));
  Alcotest.(check bool) "dur non-negative" true
    (get_num (obj_field "dur" inner) >= 0.0);
  Alcotest.(check bool) "diag event bridged as instant" true
    (List.exists (fun e -> ph e = "i" && name e = "diag:non-finite") events);
  let counters_evt = List.find (fun e -> name e = "counters") events in
  Alcotest.(check string) "counter total travels with trace" "11"
    (get_string (obj_field "test.export" (obj_field "args" counters_evt)))

let test_trace_summary_json_parses () =
  with_tracer @@ fun () ->
  Util.Trace.with_span "s" (fun () -> Util.Trace.incr Util.Trace.matvecs);
  let json = Json.parse (Util.Trace.summary_json ()) in
  (match get_list (obj_field "spans" json) with
  | [ span ] ->
      Alcotest.(check string) "span path" "s" (get_string (obj_field "path" span));
      Alcotest.(check bool) "count" true
        (get_num (obj_field "count" span) = 1.0)
  | _ -> Alcotest.fail "expected exactly one span");
  Alcotest.(check bool) "matvecs counted" true
    (get_num (obj_field "matvecs" (obj_field "counters" json)) = 1.0);
  ignore (obj_field "gc_minor_words" (obj_field "gc" json))

let noop () = ()

let test_trace_disabled_overhead () =
  Util.Trace.disable ();
  let c = Util.Trace.counter "test.disabled" in
  let body () =
    for _ = 1 to 100_000 do
      Util.Trace.with_span "noop" noop;
      Util.Trace.add c 3;
      Util.Trace.instant "nothing"
    done
  in
  body ();
  (* warmed up *)
  let w0 = Gc.minor_words () in
  body ();
  let dw = Gc.minor_words () -. w0 in
  Alcotest.(check bool)
    (Printf.sprintf "allocation-free when disabled (%.0f words)" dw)
    true (dw < 1000.0);
  Alcotest.(check int) "counter untouched when disabled" 0 (Util.Trace.value c);
  Alcotest.(check string) "no path tracked when disabled" ""
    (Util.Trace.with_span "x" Util.Trace.current_path)

let test_fault_plan_invalid_args () =
  let raises f = match f () with _ -> false | exception Invalid_argument _ -> true in
  Alcotest.(check bool) "negative first" true
    (raises (fun () -> Util.Fault.plan ~first:(-1) Util.Fault.Nan));
  Alcotest.(check bool) "negative period" true
    (raises (fun () -> Util.Fault.plan ~period:(-2) Util.Fault.Nan));
  Alcotest.(check bool) "negative limit" true
    (raises (fun () -> Util.Fault.plan ~limit:(-1) Util.Fault.Nan))

(* ---------- lint rules ---------- *)

let rec repo_root dir =
  if Sys.file_exists (Filename.concat dir "tools/lint.sh") then Some dir
  else
    let parent = Filename.dirname dir in
    if String.equal parent dir then None else repo_root parent

(* rule 6: a scratch allocation without a re-entrancy comment must fail the
   lint; the same file with the comment must pass.  Runs the real script
   against a throwaway fixture tree. *)
let test_lint_scratch_needs_reentrancy_comment () =
  match repo_root (Sys.getcwd ()) with
  | None -> Alcotest.fail "tools/lint.sh not found above the test cwd"
  | Some root ->
      let lint = Filename.concat root "tools/lint.sh" in
      let dir =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "lint-test.%d" (Unix.getpid ()))
      in
      let libdir = Filename.concat dir "lib" in
      Unix.mkdir dir 0o755;
      Unix.mkdir libdir 0o755;
      let file = Filename.concat libdir "probe.ml" in
      let write body =
        let oc = open_out file in
        output_string oc body;
        close_out oc
      in
      let run () =
        Sys.command
          (Printf.sprintf "sh %s %s >/dev/null 2>&1" (Filename.quote lint)
             (Filename.quote dir))
      in
      Fun.protect
        ~finally:(fun () ->
          (try Sys.remove file with Sys_error _ -> ());
          (try Unix.rmdir libdir with Unix.Unix_error _ -> ());
          try Unix.rmdir dir with Unix.Unix_error _ -> ())
      @@ fun () ->
      let scratch_closure =
        "let make () =\n  let scratch = Array.make 4 0.0 in\n  fun x -> scratch.(0) <- x\n"
      in
      write scratch_closure;
      Alcotest.(check bool) "undocumented scratch rejected" true (run () <> 0);
      write ("(* re-entrancy: probe buffers are checked out per call *)\n" ^ scratch_closure);
      Alcotest.(check int) "documented scratch accepted" 0 (run ());
      (* a file with no scratch at all is untouched by rule 6 *)
      write "let id x = x\n";
      Alcotest.(check int) "scratch-free file accepted" 0 (run ())

(* rule 7: worker domains in lib/serve/ must be spawned through
   Supervisor.spawn — the same text is allowed only inside supervisor.ml,
   the module that implements the policy *)
let test_lint_domain_spawn_confined_to_supervisor () =
  match repo_root (Sys.getcwd ()) with
  | None -> Alcotest.fail "tools/lint.sh not found above the test cwd"
  | Some root ->
      let lint = Filename.concat root "tools/lint.sh" in
      let dir =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "lint7-test.%d" (Unix.getpid ()))
      in
      let libdir = Filename.concat dir "lib" in
      let servedir = Filename.concat libdir "serve" in
      Unix.mkdir dir 0o755;
      Unix.mkdir libdir 0o755;
      Unix.mkdir servedir 0o755;
      let bad_file = Filename.concat servedir "pool.ml" in
      let sup_file = Filename.concat servedir "supervisor.ml" in
      let write path body =
        let oc = open_out path in
        output_string oc body;
        close_out oc
      in
      let run () =
        Sys.command
          (Printf.sprintf "sh %s %s >/dev/null 2>&1" (Filename.quote lint)
             (Filename.quote dir))
      in
      Fun.protect
        ~finally:(fun () ->
          List.iter
            (fun f -> try Sys.remove f with Sys_error _ -> ())
            [ bad_file; sup_file ];
          List.iter
            (fun d -> try Unix.rmdir d with Unix.Unix_error _ -> ())
            [ servedir; libdir; dir ])
      @@ fun () ->
      let body = "let start f = Domain.spawn f\n" in
      write bad_file body;
      Alcotest.(check bool) "bare Domain.spawn rejected" true (run () <> 0);
      Sys.remove bad_file;
      write sup_file body;
      Alcotest.(check int) "supervisor.ml is the allowed site" 0 (run ())

(* rule 8: lib/hier/ must cache through Persist.Depgraph, never the raw
   store — a direct store write bypasses the dependency edges that
   invalidation walks *)
let test_lint_hier_store_access_forbidden () =
  match repo_root (Sys.getcwd ()) with
  | None -> Alcotest.fail "tools/lint.sh not found above the test cwd"
  | Some root ->
      let lint = Filename.concat root "tools/lint.sh" in
      let dir =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "lint8-test.%d" (Unix.getpid ()))
      in
      let libdir = Filename.concat dir "lib" in
      let hierdir = Filename.concat libdir "hier" in
      Unix.mkdir dir 0o755;
      Unix.mkdir libdir 0o755;
      Unix.mkdir hierdir 0o755;
      let file = Filename.concat hierdir "engine.ml" in
      let write body =
        let oc = open_out file in
        output_string oc body;
        close_out oc
      in
      let run () =
        Sys.command
          (Printf.sprintf "sh %s %s >/dev/null 2>&1" (Filename.quote lint)
             (Filename.quote dir))
      in
      Fun.protect
        ~finally:(fun () ->
          (try Sys.remove file with Sys_error _ -> ());
          List.iter
            (fun d -> try Unix.rmdir d with Unix.Unix_error _ -> ())
            [ hierdir; libdir; dir ])
      @@ fun () ->
      write "let load store = Persist.Store.get store entity ~spec\n";
      Alcotest.(check bool) "direct store access rejected" true (run () <> 0);
      write "let load dg = Persist.Depgraph.get dg entity ~spec\n";
      Alcotest.(check int) "dependency layer accepted" 0 (run ())

let () =
  Alcotest.run "util"
    [
      ( "lint",
        [
          Alcotest.test_case "scratch needs a re-entrancy comment" `Quick
            test_lint_scratch_needs_reentrancy_comment;
          Alcotest.test_case "Domain.spawn confined to supervisor" `Quick
            test_lint_domain_spawn_confined_to_supervisor;
          Alcotest.test_case "hier store access forbidden" `Quick
            test_lint_hier_store_access_forbidden;
        ] );
      ( "arrayx",
        [
          Alcotest.test_case "float_range basics" `Quick test_float_range;
          Alcotest.test_case "float_range negative span" `Quick test_float_range_negative;
          Alcotest.test_case "float_range rejects count<2" `Quick test_float_range_invalid;
          Alcotest.test_case "argmax" `Quick test_argmax;
          Alcotest.test_case "argmin" `Quick test_argmin;
          Alcotest.test_case "argmax empty raises" `Quick test_arg_empty;
          Alcotest.test_case "sum and mean" `Quick test_sum_mean;
          Alcotest.test_case "max_abs" `Quick test_max_abs;
          Alcotest.test_case "sort_desc_with_perm" `Quick test_sort_desc_with_perm;
          Alcotest.test_case "sort perm roundtrip" `Quick test_sort_perm_roundtrip;
        ] );
      ( "timer",
        [
          Alcotest.test_case "elapsed non-negative" `Quick test_timer_positive;
          Alcotest.test_case "time wraps result" `Quick test_timer_time;
        ] );
      ( "table",
        [
          Alcotest.test_case "renders headers" `Quick test_table_renders;
          Alcotest.test_case "renders cells" `Quick test_table_alignment;
          Alcotest.test_case "row width mismatch raises" `Quick test_table_mismatch;
          Alcotest.test_case "fmt_float" `Quick test_fmt_float;
        ] );
      ( "pool",
        [
          Alcotest.test_case "covers all indices exactly once" `Quick
            test_pool_covers_all_indices;
          Alcotest.test_case "seq matches parallel" `Quick test_pool_seq_matches_parallel;
          Alcotest.test_case "exception propagates" `Quick test_pool_propagates_exception;
          Alcotest.test_case "nested call runs sequentially" `Quick
            test_pool_nested_runs_sequentially;
          Alcotest.test_case "with_jobs sizes" `Quick test_pool_with_jobs;
        ] );
      ( "diag",
        [
          Alcotest.test_case "record and query" `Quick test_diag_record_and_query;
          Alcotest.test_case "no sink is a no-op" `Quick test_diag_no_sink_is_noop;
          Alcotest.test_case "fail records and raises" `Quick
            test_diag_fail_records_and_raises;
          Alcotest.test_case "to_string" `Quick test_diag_to_string;
          Alcotest.test_case "to_json" `Quick test_diag_to_json;
          Alcotest.test_case "thread safety" `Quick test_diag_thread_safety;
        ] );
      ( "trace",
        [
          Alcotest.test_case "now_ns monotonic" `Quick test_trace_now_ns_monotonic;
          Alcotest.test_case "span paths and exception safety" `Quick
            test_trace_span_paths_and_exceptions;
          Alcotest.test_case "structure identical for -j1 and -j2" `Quick
            test_trace_structure_jobs_invariant;
          Alcotest.test_case "counter atomicity across domains" `Quick
            test_trace_counter_atomicity;
          Alcotest.test_case "chrome exporter well-formed" `Quick
            test_trace_chrome_export_wellformed;
          Alcotest.test_case "summary_json parses" `Quick
            test_trace_summary_json_parses;
          Alcotest.test_case "disabled tracer allocates nothing" `Quick
            test_trace_disabled_overhead;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "1-vs-2-domain bit identity" `Quick
            test_histogram_domain_determinism;
          Alcotest.test_case "shard merge determinism" `Quick
            test_histogram_shard_merge;
          Alcotest.test_case "json round-trip" `Quick test_histogram_json_roundtrip;
          Alcotest.test_case "quantile bounds" `Quick test_histogram_quantiles;
        ] );
      ( "fault",
        [
          Alcotest.test_case "corrupt kinds" `Quick test_fault_corrupt_kinds;
          Alcotest.test_case "plan fires at first only" `Quick
            test_fault_plan_selects_first_only;
          Alcotest.test_case "periodic plan with limit" `Quick
            test_fault_plan_periodic_with_limit;
          Alcotest.test_case "invalid plan args" `Quick test_fault_plan_invalid_args;
          Alcotest.test_case "io plan selection" `Quick test_fault_io_plan_selection;
          Alcotest.test_case "io plan one-shot + fire" `Quick
            test_fault_io_plan_one_shot_and_fire;
        ] );
    ]
