#!/bin/sh
# Grep-based source lint for lib/.
#
# Rules:
#   1. No bare `failwith` in lib/ — library errors must be typed (a dedicated
#      exception, a `Result`, or a `Util.Diag` code) so callers can build
#      fallback chains instead of string-matching messages.
#   2. No polymorphic `compare` / `(=)` on abstract numeric containers via
#      `Stdlib.compare` — use the monomorphic `Float.compare`, `Int.compare`,
#      `String.compare`, or a module's own `compare`. (Heuristic: flag any
#      call of bare `compare` that is not module-qualified and not part of a
#      longer identifier.)
#   3. No `Mat.transpose` in lib/kle/ — the KLE hot paths must use
#      `Mat.mul_nt` (A·Bᵀ without materialising the transpose) or the
#      matrix-free operator instead of allocating an explicit transpose.
#   4. No `Unix.gettimeofday` / `Sys.time` in lib/ outside lib/util/trace.ml —
#      all timing goes through the single monotonic clock behind
#      `Util.Trace.now_ns` (and `Util.Timer` on top of it), so spans, timers
#      and counters are mutually comparable and immune to wall-clock jumps.
#   5. No `Marshal` in lib/ — persisted artifacts go through the explicit,
#      versioned, checksummed codec in lib/persist (`Persist.Codec` /
#      `Persist.Entity`). Marshal's format is compiler-dependent and a
#      corrupt blob can crash the reader instead of degrading to recompute.
#   6. Any file in lib/ that allocates named `scratch`/`workspace` buffers
#      (mutable state captured by a returned closure) must carry a
#      `re-entrancy:` comment explaining why concurrent calls are safe.
#      A shared scratch silently corrupts results when two domains call the
#      same closure — exactly the bug class the pooled-scratch apply fixed —
#      so the safety argument has to live next to the allocation.
#   7. No bare `Domain.spawn` in lib/serve/ outside supervisor.ml — worker
#      domains must be started through `Serve.Supervisor.spawn` so every
#      crash hits the restart/backoff/quarantine policy. A domain spawned
#      directly dies silently on an uncaught exception and its jobs hang.
#   8. No `Persist.Store.` in lib/hier/ — hierarchical macro caching must go
#      through `Persist.Depgraph`, which records the reverse dependency
#      edges invalidation walks. A direct store write silently produces an
#      entry that `invalidate` can never find, so a dirty block's stitched
#      results would survive the very invalidation that was meant to remove
#      them.
#
# Exits non-zero and prints offending lines when a rule is violated.
#
# Usage: lint.sh [root]  — lints `root`/lib (default: the repo checkout
# containing this script); the argument exists so the test suite can point
# the rules at fixture trees.

set -eu

cd "${1:-$(dirname "$0")/..}"

status=0

fail() {
  echo "lint: $1" >&2
  echo "$2" >&2
  status=1
}

# Rule 1: bare failwith in lib/.
if matches=$(grep -rn --include='*.ml' --include='*.mli' 'failwith' lib/); then
  fail "bare failwith in lib/ — raise a typed exception or report through Util.Diag instead" "$matches"
fi

# Rule 2: unqualified polymorphic compare in lib/.
# Matches `compare` as a standalone identifier not preceded by a module dot
# or an identifier character, excluding definitions (`let compare`,
# `val compare`) and longer names like `compare_foo` / `foo_compare`.
if matches=$(grep -rnE --include='*.ml' --include='*.mli' \
  '(^|[^.A-Za-z0-9_])compare[^_A-Za-z0-9]' lib/ \
  | grep -vE '(let|val|and)[[:space:]]+compare' \
  | grep -vE '\([[:space:]]*compare[[:space:]]*\)' \
  | grep -vE '"compare"' \
  | grep -vE '^\s*[^:]*:[0-9]+:\s*\(\*' || true); then
  if [ -n "$matches" ]; then
    fail "unqualified polymorphic compare in lib/ — use Float.compare / Int.compare / String.compare or a module compare" "$matches"
  fi
fi

# Rule 3: no Mat.transpose in lib/kle/.
if matches=$(grep -rn --include='*.ml' --include='*.mli' 'Mat\.transpose' lib/kle/); then
  fail "Mat.transpose in lib/kle/ — use Mat.mul_nt or the matrix-free operator instead of materialising a transpose" "$matches"
fi

# Rule 4: non-monotonic clocks in lib/ (trace.ml owns the clock).
if matches=$(grep -rnE --include='*.ml' --include='*.mli' \
  'Unix\.gettimeofday|Sys\.time[^a-z_]|Sys\.time$' lib/ \
  | grep -v '^lib/util/trace\.ml:' || true); then
  if [ -n "$matches" ]; then
    fail "wall-clock timing in lib/ — use Util.Trace.now_ns / Util.Timer (monotonic) instead of Unix.gettimeofday or Sys.time" "$matches"
  fi
fi

# Rule 5: no Marshal in lib/ (persisted data uses Persist.Codec).
if matches=$(grep -rn --include='*.ml' --include='*.mli' 'Marshal\.' lib/); then
  fail "Marshal in lib/ — encode through Persist.Codec / Persist.Entity (explicit, versioned, checksummed) instead" "$matches"
fi

# Rule 6: scratch buffers need a documented re-entrancy story.
# A file that binds a `scratch` / `workspace` buffer must also contain a
# `re-entrancy:` comment; the pattern only looks at allocation sites
# (ref / Array.* / Mat.create) so loop-local reads of a scratch don't trip it.
if files=$(grep -rlE --include='*.ml' \
  'let[[:space:]]+(scratch|workspace)[A-Za-z0-9_]*[[:space:]:].*(ref[[:space:]]|Array\.(make|init|create_float)|Mat\.create)' \
  lib/ || true); then
  offenders=""
  for f in $files; do
    if ! grep -q 're-entrancy:' "$f"; then
      offenders="$offenders$f
"
    fi
  done
  if [ -n "$offenders" ]; then
    fail "scratch buffer without a re-entrancy comment — document why concurrent calls of the enclosing closure are safe (see lib/kle/operator.ml)" "$offenders"
  fi
fi

# Rule 7: worker domains in lib/serve/ go through Supervisor.spawn.
if matches=$(grep -rn --include='*.ml' --include='*.mli' 'Domain\.spawn' lib/serve/ \
  | grep -v '^lib/serve/supervisor\.mli\?:' || true); then
  if [ -n "$matches" ]; then
    fail "bare Domain.spawn in lib/serve/ — start worker domains through Serve.Supervisor.spawn so crashes hit the restart/quarantine policy" "$matches"
  fi
fi

# Rule 8: lib/hier/ caches only through the dependency layer.
if [ -d lib/hier ]; then
  if matches=$(grep -rn --include='*.ml' --include='*.mli' 'Persist\.Store\.' lib/hier/); then
    fail "Persist.Store in lib/hier/ — go through Persist.Depgraph so invalidation sees the dependency edges" "$matches"
  fi
fi

if [ "$status" -eq 0 ]; then
  echo "lint: OK"
fi
exit "$status"
